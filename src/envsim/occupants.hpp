// Stochastic occupant agents: six subjects with per-day schedules (arrival,
// departure, lunch, short excursions) and an in-room activity state machine
// (sitting / standing / walking) that drives their positions — the
// "unconstrained office activities" of Section IV-A.
//
// The schedule generator encodes the collection timeline that produces the
// Table II / Table III shape:
//   - weekday office hours with staggered arrivals around 08:30;
//   - evenings and nights empty (test folds 1-3);
//   - on the final day (index 3, Friday Jan 7) everyone arrives late
//     (~09:25), making fold 4 start empty and then fill, and stays until
//     after the collection ends, keeping fold 5 fully occupied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "csi/channel.hpp"
#include "csi/geometry.hpp"

namespace wifisense::envsim {

struct OccupantConfig {
    std::size_t n_subjects = 6;
    std::size_t n_days = 4;

    double present_prob = 0.42;        ///< chance a subject comes in on a weekday
    double arrival_mean_h = 8.6;
    double arrival_sd_h = 0.9;
    /// Whole-team per-day schedule shift (deadlines, meetings elsewhere):
    /// N(0, day_jitter_h) added to every arrival/departure of that day.
    /// Keeps the time-of-day-only classifier from memorizing the schedule
    /// (the paper's time-only baseline reaches just 89.3%).
    double day_jitter_h = 0.5;
    /// The team habitually works into the evening...
    double departure_mean_h = 19.0;
    double departure_sd_h = 0.8;
    double departure_latest_h = 21.3;
    /// ...except on the day before the final day (Thursday), when everyone
    /// leaves early — the test folds 1-3 (Thursday evening/night) must be
    /// empty per Table III. The mismatch between the usual evening presence
    /// and the empty Thursday evening is what caps the paper's time-only
    /// baseline at ~89%.
    int early_day = 2;
    double early_day_departure_mean_h = 17.2;
    double early_day_departure_latest_h = 18.9;

    double lunch_prob = 0.8;
    double lunch_start_mean_h = 12.5;
    double lunch_start_sd_h = 0.35;
    double lunch_len_mean_h = 0.75;
    double lunch_len_sd_h = 0.2;

    /// Short exits (meetings, coffee) as a Poisson process while present.
    double excursion_rate_per_h = 0.85;
    double excursion_len_mean_h = 0.5;

    /// Final-day (Friday) overrides producing the fold 4/5 regime.
    int late_day = 3;
    double late_day_present_prob = 0.5;
    double late_day_arrival_mean_h = 9.55;
    double late_day_arrival_sd_h = 0.12;
    double late_day_departure_mean_h = 18.4;
    double late_day_lunch_prob = 0.35;
    double late_day_excursion_mult = 0.4;  ///< fold 5 must stay occupied

    /// Activity state machine dwell means (seconds).
    double sit_dwell_s = 900.0;
    double stand_dwell_s = 120.0;
    double walk_dwell_s = 45.0;
    double walk_speed_mps = 1.0;
    double micro_motion_m = 0.0015;  ///< breathing/fidget amplitude while seated

    /// Keep-out strip in front of the AP/RP1 wall (occupants never cross the
    /// TX-RX line, per Section IV-A).
    double keepout_y = 1.0;

    /// Torso reflection coefficient handed to the channel model.
    double body_reflectivity = 1.0;
};

enum class Activity : std::uint8_t { kSitting, kStanding, kWalking };

/// A presence interval of one subject: [enter, leave) in absolute seconds.
struct PresenceInterval {
    double enter = 0.0;
    double leave = 0.0;
};

class OccupantModel {
public:
    OccupantModel(OccupantConfig cfg, csi::RoomGeometry room, std::uint64_t seed);

    /// Advance positions/activities to the given time. Must be called with
    /// non-decreasing timestamps.
    void step(double timestamp, double dt);

    /// Number of subjects inside at the given time (schedule lookup only;
    /// does not require step()).
    int count_inside(double timestamp) const;

    /// Body states of the subjects currently inside (positions valid after
    /// step() has advanced to the queried time).
    std::vector<csi::BodyState> bodies() const;

    /// True if any subject currently inside is in the walking state (valid
    /// after step() has advanced to the queried time).
    bool any_walking() const;

    const std::vector<std::vector<PresenceInterval>>& schedules() const {
        return schedule_;
    }

private:
    struct SubjectState {
        csi::Vec3 position;
        csi::Vec3 desk;
        csi::Vec3 target;
        Activity activity = Activity::kSitting;
        double activity_until = 0.0;
        bool inside = false;
    };

    bool subject_inside(std::size_t subject, double timestamp) const;
    csi::Vec3 random_waypoint(std::mt19937_64& rng) const;
    void enter_activity(SubjectState& s, Activity a, double now);

    OccupantConfig cfg_;
    csi::RoomGeometry room_;
    std::vector<std::vector<PresenceInterval>> schedule_;  // per subject
    std::vector<SubjectState> subjects_;
    std::mt19937_64 rng_;
    double now_ = 0.0;
};

}  // namespace wifisense::envsim
