#include "envsim/sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wifisense::envsim {

EnvironmentSensor::EnvironmentSensor(SensorConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
    if (cfg_.time_constant_s <= 0.0)
        throw std::invalid_argument("EnvironmentSensor: non-positive time constant");
}

// wifisense-lint: allow-call(noise_) Gaussian draw from the sensor's own substream engine (seeded in the ctor): deterministic under the fixed-seed contract
void EnvironmentSensor::step(double dt, double true_temperature_c,
                             double true_humidity_pct, bool heater_on) {
    if (dt <= 0.0) throw std::invalid_argument("EnvironmentSensor::step: dt <= 0");
    const double a = 1.0 - std::exp(-dt / cfg_.time_constant_s);

    // Ornstein-Uhlenbeck exposure process, pulled toward 0 when the heater is
    // off and toward a mid level while it runs.
    const double pickup_target = heater_on ? 0.35 : 0.0;
    const double b = 1.0 - std::exp(-dt / cfg_.pickup_tau_s);
    pickup_ += b * (pickup_target - pickup_) +
               0.05 * std::sqrt(b) * noise_(rng_);
    pickup_ = std::clamp(pickup_, 0.0, 1.0);

    const double sensed_t =
        true_temperature_c + cfg_.heater_pickup_max_c * pickup_ * (heater_on ? 1.0 : 0.2);
    temp_state_ += a * (sensed_t - temp_state_);
    hum_state_ += a * (true_humidity_pct - hum_state_);
}

// wifisense-lint: allow-call(noise_) Gaussian draw from the sensor's own substream engine (seeded in the ctor): deterministic under the fixed-seed contract
double EnvironmentSensor::read_temperature_c() {
    const double raw = temp_state_ + cfg_.temp_noise_c * noise_(rng_);
    const double q = std::round(raw / cfg_.temp_quant_c) * cfg_.temp_quant_c;
    if (!stalled_) last_temp_reading_ = q;
    return last_temp_reading_;
}

// wifisense-lint: allow-call(noise_) Gaussian draw from the sensor's own substream engine (seeded in the ctor): deterministic under the fixed-seed contract
double EnvironmentSensor::read_humidity_pct() {
    const double raw = hum_state_ + cfg_.humidity_noise_pct * noise_(rng_);
    const double q = std::clamp(
        std::round(raw / cfg_.humidity_quant_pct) * cfg_.humidity_quant_pct, 0.0,
        100.0);
    if (!stalled_) last_hum_reading_ = q;
    return last_hum_reading_;
}

}  // namespace wifisense::envsim
