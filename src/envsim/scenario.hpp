// Seeded scenario generation for the fleet simulator: one FleetConfig
// describes a whole deployment (the campus-occupancy setting of Mohottige et
// al. — thousands of heterogeneous rooms, not one office), and
// make_room_scenario() expands room index i into a fully-parameterized
// SimulationConfig drawn from the room's own RNG substream.
//
// Determinism: room i's scenario is a pure function of
// (fleet.seed, i) via common::substream — independent of every other room,
// of the thread count, and of generation order. The fleet layer relies on
// this to generate scenarios lazily inside worker threads.
//
// Archetypes vary what the paper's single office holds fixed: geometry,
// occupant counts, schedule shape, and the availability-fault mix
// (SenseFi's observation that model quality hinges on environment
// diversity). Scenario fault plans draw only *availability* faults — frame
// drops, saturation, outage bursts, sensor stalls, clock skew — never the
// NaN/Inf value corruptions, so every fleet record is finite by
// construction (the ChaosSoak fleet invariant). Value-corruption faults
// remain available through an explicit SimulationConfig::faults.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "data/simtime.hpp"
#include "envsim/simulation.hpp"

namespace wifisense::envsim {

enum class RoomArchetype : std::uint8_t {
    kOffice = 0,
    kClassroom,
    kHome,
    kCorridor,
};

inline constexpr std::size_t kNumArchetypes = 4;

const char* to_string(RoomArchetype archetype);

/// Sampling weights over the four archetypes (need not sum to 1; they are
/// normalized at draw time). The default mirrors a campus building: mostly
/// offices, some teaching rooms, a few home-office links, and corridors.
struct ArchetypeMix {
    std::array<double, kNumArchetypes> weights{0.55, 0.20, 0.15, 0.10};

    double weight(RoomArchetype a) const {
        return weights[static_cast<std::size_t>(a)];
    }
};

/// Parse "office:0.5,classroom:0.3,home:0.15,corridor:0.05". Omitted
/// archetypes get weight 0; unknown names, negative weights, or an all-zero
/// mix produce kInvalidArgument.
[[nodiscard]] common::Result<ArchetypeMix> parse_archetype_mix(
    std::string_view spec);

std::string to_spec(const ArchetypeMix& mix);

struct FleetConfig {
    std::size_t n_rooms = 16;
    std::uint64_t seed = 7;

    /// Shared collection window: every room simulates the same wall-clock
    /// span (rooms differ in everything else).
    double start_timestamp = data::kCollectionStart;
    double duration_s = 3600.0;
    double sample_rate_hz = 0.5;

    ArchetypeMix mix;

    /// Fraction of rooms carrying an availability-fault plan (drops,
    /// saturation, bursts, stalls, skew — never NaN/Inf corruption).
    double faulty_fraction = 0.25;
};

/// One room's expansion: the archetype label plus the concrete simulator
/// configuration (the room_id is stamped onto every emitted record).
struct RoomScenario {
    std::uint32_t room_id = 0;
    RoomArchetype archetype = RoomArchetype::kOffice;
    SimulationConfig sim;
};

/// Expand room `room_index` of the fleet. Pure function of
/// (fleet, room_index); throws std::invalid_argument on an invalid fleet
/// (zero rooms is allowed here — validated by FleetSimulator — but
/// non-positive duration/rate or an all-zero mix is not).
RoomScenario make_room_scenario(const FleetConfig& fleet,
                                std::size_t room_index);

}  // namespace wifisense::envsim
