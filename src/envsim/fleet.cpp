#include "envsim/fleet.hpp"

#include <stdexcept>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/sliding_window.hpp"
#include "common/trace.hpp"
#include "envsim/simulation.hpp"

namespace wifisense::envsim {

FleetSimulator::FleetSimulator(FleetConfig cfg) : cfg_(cfg) {
    if (cfg_.n_rooms == 0)
        throw std::invalid_argument("FleetSimulator: zero rooms");
    if (cfg_.duration_s <= 0.0)
        throw std::invalid_argument("FleetSimulator: non-positive duration");
    if (cfg_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("FleetSimulator: non-positive sample rate");
    double total_weight = 0.0;
    for (double w : cfg_.mix.weights) {
        if (!(w >= 0.0))
            throw std::invalid_argument(
                "FleetSimulator: negative archetype weight");
        total_weight += w;
    }
    if (total_weight <= 0.0)
        throw std::invalid_argument("FleetSimulator: all-zero archetype mix");
}

FleetRunStats FleetSimulator::run(
    const std::function<void(const data::SampleRecord&)>& sink) {
    // Phase 1 (parallel across rooms): each room expands its scenario and
    // simulates into its own buffer — no shared mutable state between rooms.
    std::vector<std::vector<data::SampleRecord>> shards(cfg_.n_rooms);
    std::vector<std::uint8_t> archetypes(cfg_.n_rooms, 0);

    common::parallel_for(
        cfg_.n_rooms,
        [&](std::size_t room) {
            common::TraceScope span("fleet.room");
            const RoomScenario scenario = make_room_scenario(cfg_, room);
            archetypes[room] = static_cast<std::uint8_t>(scenario.archetype);

            std::vector<data::SampleRecord>& shard = shards[room];
            shard.reserve(static_cast<std::size_t>(cfg_.duration_s *
                                                   cfg_.sample_rate_hz) +
                          1);
            OfficeSimulator sim(scenario.sim);
            sim.run([&shard, &scenario](const data::SampleRecord& r) {
                data::SampleRecord tagged = r;
                tagged.room_id = scenario.room_id;
                shard.push_back(tagged);
            });
        },
        /*grain=*/1);

    // Phase 2 (serial): concatenate in room-index order — the output stream
    // never depends on which worker finished first.
    FleetRunStats stats;
    stats.rooms = cfg_.n_rooms;
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    for (std::size_t room = 0; room < cfg_.n_rooms; ++room) {
        ++stats.rooms_by_archetype[archetypes[room]];
        stats.rows += shards[room].size();
        h = data::dataset_digest(data::DatasetView(shards[room]), h);
        for (const data::SampleRecord& r : shards[room]) sink(r);
        // Telemetry: one flight event and a windowed row count per completed
        // room, emitted from this serial loop so event order matches the
        // deterministic concatenation order, not worker completion order.
        if (!shards[room].empty()) {
            const double t_end = shards[room].back().timestamp;
            common::flight_record("fleet", "room-done", t_end,
                                  static_cast<double>(shards[room].size()),
                                  static_cast<double>(room));
            common::obs_windowed_counter("fleet.rows")
                .add(t_end, shards[room].size());
        }
        shards[room].clear();
        shards[room].shrink_to_fit();
    }
    stats.digest = h;
    return stats;
}

data::Dataset FleetSimulator::run(FleetRunStats* stats) {
    data::Dataset dataset;
    dataset.reserve(cfg_.n_rooms *
                    (static_cast<std::size_t>(cfg_.duration_s *
                                              cfg_.sample_rate_hz) +
                     1));
    const FleetRunStats s =
        run([&dataset](const data::SampleRecord& r) { dataset.push_back(r); });
    if (stats != nullptr) *stats = s;
    return dataset;
}

}  // namespace wifisense::envsim
