#include "envsim/event_queue.hpp"

#include <stdexcept>

#include "common/trace.hpp"

namespace wifisense::envsim {

std::size_t EventQueue::add_process(LogicalProcess* lp) {
    if (lp == nullptr)
        throw std::invalid_argument("EventQueue: null logical process");
    processes_.push_back(lp);
    return processes_.size() - 1;
}

void EventQueue::schedule(double t, std::size_t lp_id) {
    if (lp_id >= processes_.size())
        throw std::invalid_argument("EventQueue: unknown logical process id");
    if (started_ && t < now_)
        throw std::invalid_argument(
            "EventQueue: scheduling into the past (causality violation)");
    heap_.push(Event{t, lp_id, seq_++});
}

/// Event dispatch is the replay-determinism choke point: every simulated
/// sample flows through here, so a wall-clock read or a raw (unseeded) RNG
/// draw anywhere in the dispatch subtree would silently break the fixed-seed
/// reproducibility contract (DESIGN.md §7). The contract below makes
/// wifisense-lint prove both properties transitively across every
/// LogicalProcess subclass reachable from the virtual on_event dispatch.
// wifisense-lint: requires(noclock, det)
// wifisense-lint: allow-call(TraceScope) env-gated observability: span timestamps never feed back into simulation state
void EventQueue::run() {
    stop_requested_ = false;
    while (!heap_.empty() && !stop_requested_) {
        const Event ev = heap_.top();
        heap_.pop();
        now_ = ev.time;
        started_ = true;
        ++dispatched_;
        common::TraceScope span("sim.event");
        processes_[ev.lp]->on_event(ev.time, *this);
    }
}

}  // namespace wifisense::envsim
