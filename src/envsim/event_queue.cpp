#include "envsim/event_queue.hpp"

#include <stdexcept>

#include "common/trace.hpp"

namespace wifisense::envsim {

std::size_t EventQueue::add_process(LogicalProcess* lp) {
    if (lp == nullptr)
        throw std::invalid_argument("EventQueue: null logical process");
    processes_.push_back(lp);
    return processes_.size() - 1;
}

void EventQueue::schedule(double t, std::size_t lp_id) {
    if (lp_id >= processes_.size())
        throw std::invalid_argument("EventQueue: unknown logical process id");
    if (started_ && t < now_)
        throw std::invalid_argument(
            "EventQueue: scheduling into the past (causality violation)");
    heap_.push(Event{t, lp_id, seq_++});
}

void EventQueue::run() {
    stop_requested_ = false;
    while (!heap_.empty() && !stop_requested_) {
        const Event ev = heap_.top();
        heap_.pop();
        now_ = ev.time;
        started_ = true;
        ++dispatched_;
        common::TraceScope span("sim.event");
        processes_[ev.lp]->on_event(ev.time, *this);
    }
}

}  // namespace wifisense::envsim
