// Model of the Nordic Thingy 52 environmental ground-truth sensor: a
// first-order response lag, occasional radiative pickup from the heater
// plume (the paper's training fold shows temperature spikes up to 40 degC),
// measurement noise, and the device's quantization (0.01 degC, integer %RH).
#pragma once

#include <cstdint>
#include <random>

namespace wifisense::envsim {

struct SensorConfig {
    double time_constant_s = 90.0;
    double temp_noise_c = 0.1;
    double humidity_noise_pct = 0.8;
    double temp_quant_c = 0.01;
    double humidity_quant_pct = 1.0;

    /// Radiative heater-plume pickup: while the heater runs, the sensor
    /// occasionally sits in the warm air stream and reads several degrees
    /// high. Modeled as an Ornstein-Uhlenbeck exposure in [0,1] gating a
    /// fixed offset.
    double heater_pickup_max_c = 4.0;
    double pickup_tau_s = 240.0;
};

class EnvironmentSensor {
public:
    EnvironmentSensor(SensorConfig cfg, std::uint64_t seed);

    /// Advance the sensor state toward the true values.
    void step(double dt, double true_temperature_c, double true_humidity_pct,
              bool heater_on);

    /// Quantized, noisy readings (what lands in the dataset).
    double read_temperature_c();
    double read_humidity_pct();

    /// Fault injection: while stalled, the device repeats its last reported
    /// reading (a wedged I2C transaction on the real Thingy). Reads still
    /// consume their noise draws so the RNG stream — and therefore every
    /// reading after the stall clears — is identical to a stall-free run.
    void set_stalled(bool stalled) { stalled_ = stalled; }
    bool stalled() const { return stalled_; }

private:
    SensorConfig cfg_;
    double temp_state_ = 21.0;
    double hum_state_ = 35.0;
    double pickup_ = 0.0;
    bool stalled_ = false;
    double last_temp_reading_ = 21.0;
    double last_hum_reading_ = 35.0;
    std::mt19937_64 rng_;
    std::normal_distribution<double> noise_{0.0, 1.0};
};

}  // namespace wifisense::envsim
