// Fleet simulator: fans N independently-seeded room simulations (scenarios
// from envsim/scenario.hpp) across the deterministic thread pool and
// concatenates their outputs in room-id order.
//
// Determinism contract: room i's records are a pure function of
// (fleet.seed, i) — rooms never share RNG state — and concatenation order is
// the room index, not completion order. The concatenated byte stream (and
// therefore data::dataset_digest of it) is identical at every thread count;
// bench_fleet and the CI fleet-smoke job pin that digest.
//
// Execution model: the pool parallelizes *across* rooms (one region, grain
// 1); the per-room flush_window regions nest inside a worker and run inline,
// so a fleet run costs one pool region regardless of room count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "data/dataset.hpp"
#include "envsim/scenario.hpp"

namespace wifisense::envsim {

struct FleetRunStats {
    std::size_t rooms = 0;
    std::size_t rows = 0;
    /// Rooms per archetype, indexed by RoomArchetype.
    std::array<std::size_t, kNumArchetypes> rooms_by_archetype{};
    /// data::dataset_digest of the concatenated output.
    std::uint64_t digest = 0;
};

class FleetSimulator {
public:
    /// Throws std::invalid_argument on zero rooms, non-positive
    /// duration/rate, or an invalid archetype mix.
    explicit FleetSimulator(FleetConfig cfg);

    /// Simulate every room and return the concatenated dataset (records
    /// tagged with their room_id, rooms in index order). Optionally reports
    /// run statistics.
    data::Dataset run(FleetRunStats* stats = nullptr);

    /// Streaming variant: hands every record to `sink` in room-id order
    /// without retaining the concatenated dataset.
    FleetRunStats run(const std::function<void(const data::SampleRecord&)>& sink);

    const FleetConfig& config() const { return cfg_; }

private:
    FleetConfig cfg_;
};

}  // namespace wifisense::envsim
