#include "envsim/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "data/simtime.hpp"

namespace wifisense::envsim {

double saturation_vapor_density_gm3(double temperature_c) {
    const double es = 6.112 * std::exp(17.62 * temperature_c / (243.12 + temperature_c));
    return 216.7 * es / (temperature_c + 273.15);
}

ThermalModel::ThermalModel(ThermalConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      air_(cfg.initial_air_c),
      structure_(cfg.initial_structure_c),
      vapor_(cfg.initial_vapor_gm3),
      rng_(seed) {
    if (cfg_.volume_m3 <= 0.0 || cfg_.air_capacity_j_per_k <= 0.0 ||
        cfg_.structure_capacity_j_per_k <= 0.0)
        throw std::invalid_argument("ThermalModel: non-positive capacity");
}

double ThermalModel::outdoor_temperature_c(double timestamp) const {
    const double hour = data::hour_of_day(timestamp);
    const double phase =
        2.0 * std::numbers::pi * (hour - cfg_.outdoor_temp_peak_hour) / 24.0;
    return cfg_.outdoor_temp_mean_c + cfg_.outdoor_temp_amplitude_c * std::cos(phase) +
           cfg_.outdoor_temp_trend_c_per_day * timestamp / data::kSecondsPerDay;
}

double ThermalModel::active_setpoint(double timestamp) const {
    const double hour = data::hour_of_day(timestamp);
    const int day = data::day_index(timestamp);
    if (data::is_weekend(timestamp)) return 0.0;
    if (hour < cfg_.heating_on_hour || hour >= cfg_.heating_off_hour) return 0.0;
    if (day == cfg_.fault_day) {
        if (hour < cfg_.fault_end_hour) return 0.0;  // fault: heating dead
        return cfg_.fault_boost_setpoint_c;          // catch-up boost
    }
    // Deterministic per-day thermostat fiddling (Weyl-sequence hash).
    const double jitter =
        cfg_.setpoint_day_jitter_c *
        std::fmod(0.6180339887 * static_cast<double>(day + 1) * 7.0, 1.0);
    return cfg_.setpoint_c + jitter;
}

void ThermalModel::step(double timestamp, double dt, int occupants, bool window_open,
                        double extra_ach_per_h) {
    if (dt <= 0.0) throw std::invalid_argument("ThermalModel::step: dt <= 0");

    // Thermostat relay with hysteresis.
    const double setpoint = active_setpoint(timestamp);
    if (setpoint <= 0.0) {
        heater_on_ = false;
    } else if (heater_on_) {
        if (air_ > setpoint + cfg_.hysteresis_c) heater_on_ = false;
    } else {
        if (air_ < setpoint - cfg_.hysteresis_c) heater_on_ = true;
    }

    const double t_out = outdoor_temperature_c(timestamp);
    const double q_heater = heater_on_ ? cfg_.heater_power_w : 0.0;
    const double q_people = cfg_.occupant_heat_w * occupants;

    const double air_flux = q_heater + q_people -
                            cfg_.air_structure_w_per_k * (air_ - structure_) -
                            cfg_.air_outdoor_w_per_k * (air_ - t_out);
    const double structure_flux =
        cfg_.air_structure_w_per_k * (air_ - structure_) -
        cfg_.structure_outdoor_w_per_k * (structure_ - t_out);

    air_ += dt * air_flux / cfg_.air_capacity_j_per_k;
    structure_ += dt * structure_flux / cfg_.structure_capacity_j_per_k;
    // Small stochastic forcing on the air node (solar gain, drafts).
    // wifisense-lint: allow(ipa.unresolved-call) Gaussian draw from the
    // model's own substream engine (seeded in the ctor): deterministic
    // under the fixed-seed contract
    air_ += noise_(rng_) * 2e-4 * std::sqrt(dt);

    const double ach = cfg_.base_air_changes_per_h +
                       cfg_.occupant_air_changes_per_h * occupants +
                       (window_open ? cfg_.window_air_changes_per_h : 0.0) +
                       extra_ach_per_h;
    const double lambda = ach / 3600.0;  // per second
    const double vapor_in =
        cfg_.occupant_vapor_g_per_h * occupants / 3600.0 / cfg_.volume_m3;
    const double outdoor_vapor =
        cfg_.outdoor_vapor_gm3 +
        cfg_.outdoor_vapor_trend_per_day * timestamp / data::kSecondsPerDay;
    vapor_ += dt * (vapor_in - lambda * (vapor_ - outdoor_vapor));
    vapor_ = std::max(vapor_, 0.1);
}

double ThermalModel::relative_humidity_pct() const {
    const double rh = 100.0 * vapor_ / saturation_vapor_density_gm3(air_);
    return std::clamp(rh, 0.0, 100.0);
}

}  // namespace wifisense::envsim
