#include "envsim/simulation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "envsim/event_queue.hpp"

namespace wifisense::envsim {

namespace {

// ---------------------------------------------------------------------------
// Discrete-event decomposition.
//
// The world advances as five logical processes on an EventQueue, activated
// once per kDynamicsDt tick in registration order (the queue's
// (time, lp_id, seq) tie-break):
//
//   0 FurnitureVentilationLP  furniture shuffles/events, channel drift,
//                             window-opening draws  (owns event_rng, ^0x66)
//   1 OccupantLP              agent schedules + motion            (^0x55)
//   2 ThermalLP               zone heat/moisture balance          (^0x33)
//   3 SensorLP                env-sensor dynamics + stall faults  (^0x44)
//   4 CsiSamplingLP           measurement capture; receiver noise (^0x22)
//                             over the channel model              (^0x11)
//
// Each LP draws only from its own substream RNG, so the dispatch order —
// not thread scheduling — defines every stream. This per-tick LP order
// consumes exactly the randomness, in exactly the order, of the historical
// monolithic loop; the single-room output is therefore bitwise identical to
// the pre-DES simulator (pinned by the EventQueueGolden tests).
//
// Measurement itself stays two-phase: the CSI LP captures a TickJob — the
// pure inputs of the measurement (environment, bodies, scatterer snapshot,
// sensor/label fields, pre-drawn receiver noise per packet) — and
// flush_window() synthesizes records in parallel over windowed tick shards,
// handing them to the sink in timestamp order. No RNG is touched in phase 2,
// so the emitted stream is bitwise identical at every thread count.
// ---------------------------------------------------------------------------

struct PacketJob {
    double timestamp = 0.0;
    csi::PacketNoise noise;
    /// Pre-drawn noise of the extra links (link i+1 at index i); populated
    /// only by multi-link runs, so the legacy path carries no extra state.
    std::vector<csi::PacketNoise> link_noise;
};

using LinkRecordSink =
    std::function<void(std::uint8_t, const data::SampleRecord&)>;

struct TickJob {
    csi::EnvironmentState env;
    std::vector<csi::BodyState> bodies;
    std::vector<csi::Vec3> scatterers;
    float temperature_c = 0.0f;
    float humidity_pct = 0.0f;
    std::uint8_t occupant_count = 0;
    int occupancy = 0;
    std::uint8_t activity = 0;
    std::vector<PacketJob> packets;
};

/// Packets buffered before a flush; bounds memory to a few MB while keeping
/// every flush wide enough to occupy the pool.
constexpr std::size_t kFlushPackets = 4096;

void fill_record_fields(data::SampleRecord& rec, const TickJob& job,
                        double timestamp) {
    rec.timestamp = timestamp;
    rec.temperature_c = job.temperature_c;
    rec.humidity_pct = job.humidity_pct;
    rec.occupant_count = job.occupant_count;
    rec.occupancy = job.occupancy;
    rec.activity = job.activity;
}

/// Single-link flush: the historical parallel synthesis path, untouched so
/// run() stays bitwise identical to the seed outputs.
// wifisense-lint: allow-call(sink) caller-supplied record sink: it only consumes finished samples and feeds nothing back into simulation state, so it cannot perturb the deterministic replay
void flush_window(std::vector<TickJob>& window, const csi::ChannelModel& channel,
                  const csi::Receiver& receiver,
                  const std::function<void(const data::SampleRecord&)>& sink) {
    if (window.empty()) return;
    std::vector<std::size_t> offset(window.size() + 1, 0);
    for (std::size_t i = 0; i < window.size(); ++i)
        offset[i + 1] = offset[i] + window[i].packets.size();

    std::vector<data::SampleRecord> records(offset.back());
    common::parallel_for(
        window.size(),
        [&](std::size_t ti) {
            common::TraceScope span("csi.sample");
            const TickJob& job = window[ti];
            const std::vector<std::complex<double>> cfr =
                channel.frequency_response(job.env, job.bodies, job.scatterers);
            for (std::size_t p = 0; p < job.packets.size(); ++p) {
                const std::vector<float> amps =
                    receiver.apply_noise(cfr, job.packets[p].noise);
                data::SampleRecord& rec = records[offset[ti] + p];
                fill_record_fields(rec, job, job.packets[p].timestamp);
                std::copy(amps.begin(), amps.end(), rec.csi.begin());
            }
        },
        /*grain=*/4);

    for (const data::SampleRecord& rec : records) sink(rec);
    window.clear();
}

/// Multi-link flush: per tick, one CFR per link (each link's geometry
/// against the SAME scatterer snapshot — the pure frequency_response
/// overload reads only immutable channel state), then each link's pre-drawn
/// noise. Records land in (packet, link) order; link 0's bytes match the
/// single-link flush exactly because its channel, receiver and noise are the
/// very same objects consuming the very same draws.
// wifisense-lint: allow-call(sink) caller-supplied record sink: it only consumes finished samples and feeds nothing back into simulation state, so it cannot perturb the deterministic replay
void flush_window_links(std::vector<TickJob>& window,
                        const csi::ChannelModel& channel,
                        const csi::Receiver& receiver,
                        std::span<const csi::ChannelModel> link_channels,
                        std::span<const csi::Receiver> link_receivers,
                        const LinkRecordSink& sink) {
    if (window.empty()) return;
    const std::size_t n_links = 1 + link_channels.size();
    std::vector<std::size_t> offset(window.size() + 1, 0);
    for (std::size_t i = 0; i < window.size(); ++i)
        offset[i + 1] = offset[i] + window[i].packets.size();

    std::vector<data::SampleRecord> records(offset.back() * n_links);
    common::parallel_for(
        window.size(),
        [&](std::size_t ti) {
            common::TraceScope span("csi.sample");
            const TickJob& job = window[ti];
            std::vector<std::vector<std::complex<double>>> cfr(n_links);
            cfr[0] = channel.frequency_response(job.env, job.bodies,
                                                job.scatterers);
            for (std::size_t l = 1; l < n_links; ++l)
                cfr[l] = link_channels[l - 1].frequency_response(
                    job.env, job.bodies, job.scatterers);
            for (std::size_t p = 0; p < job.packets.size(); ++p) {
                const PacketJob& packet = job.packets[p];
                for (std::size_t l = 0; l < n_links; ++l) {
                    const std::vector<float> amps =
                        l == 0 ? receiver.apply_noise(cfr[0], packet.noise)
                               : link_receivers[l - 1].apply_noise(
                                     cfr[l], packet.link_noise[l - 1]);
                    data::SampleRecord& rec =
                        records[(offset[ti] + p) * n_links + l];
                    fill_record_fields(rec, job, packet.timestamp);
                    std::copy(amps.begin(), amps.end(), rec.csi.begin());
                }
            }
        },
        /*grain=*/4);

    for (std::size_t i = 0; i < records.size(); ++i)
        sink(static_cast<std::uint8_t>(i % n_links), records[i]);
    window.clear();
}

/// Mutable world state shared by the logical processes: the seeded component
/// models (each with its own substream RNG), the fault plan, and the per-tick
/// latches written by earlier LPs and read by later ones in the same tick.
struct SimWorld {
    explicit SimWorld(const SimulationConfig& cfg_in, bool with_links = false)
        : cfg(cfg_in),
          sample_period(1.0 / cfg_in.sample_rate_hz),
          channel(cfg_in.room, cfg_in.channel, cfg_in.seed ^ 0x11),
          receiver(cfg_in.receiver, cfg_in.seed ^ 0x22),
          thermal(cfg_in.thermal, cfg_in.seed ^ 0x33),
          sensor(cfg_in.sensor, cfg_in.seed ^ 0x44),
          occupants(cfg_in.occupants, cfg_in.room, cfg_in.seed ^ 0x55),
          event_rng(cfg_in.seed ^ 0x66),
          fault_plan(cfg_in.faults),
          env_skew(fault_plan.env_skew_s()),
          last_shuffle_day(data::day_index(cfg_in.start_timestamp)),
          n_samples(static_cast<std::size_t>(
              std::llround(cfg_in.duration_s * cfg_in.sample_rate_hz))),
          n_ticks(static_cast<std::size_t>(
              std::llround(cfg_in.duration_s / kDynamicsDt))) {
        // Fault injection: the plan's decisions are pure functions of its own
        // seed (packet index / time window), so none of the world substreams
        // are perturbed. An inactive plan leaves the emitted bytes exactly as
        // before the fault layer existed.
        if (fault_plan.active()) receiver.set_fault_plan(&fault_plan);

        // Extra receiver links (multi-link runs only): each link gets its own
        // channel geometry (same room, its own rx position — the image-source
        // inventory is rx-independent, so the same channel seed reproduces
        // the same scatterer world) and its own receiver noise substream.
        // Building these touches none of link 0's RNGs, which is what keeps
        // link 0 bitwise identical to a single-link run.
        if (with_links) {
            link_channels.reserve(cfg.extra_rx.size());
            link_receivers.reserve(cfg.extra_rx.size());
            for (std::size_t i = 0; i < cfg.extra_rx.size(); ++i) {
                csi::RoomGeometry geo = cfg.room;
                geo.rx = cfg.extra_rx[i];
                link_channels.emplace_back(geo, cfg.channel, cfg.seed ^ 0x11);
                link_receivers.emplace_back(
                    cfg.receiver,
                    common::substream_seed(cfg.seed ^ 0x22, i + 1));
                if (fault_plan.active())
                    link_receivers.back().set_fault_plan(
                        &fault_plan, static_cast<std::uint8_t>(i + 1));
            }
        }

        // Warm up the thermal state: simulate the morning before collection
        // starts (06:00 -> start) so the 15:08 initial condition is
        // consistent with a heated, occupied office rather than the config
        // default.
        const double warm_start =
            std::floor(cfg.start_timestamp / data::kSecondsPerDay) *
                data::kSecondsPerDay +
            6.0 * 3600.0;
        for (double t = warm_start; t < cfg.start_timestamp; t += 30.0)
            thermal.step(t, 30.0, occupants.count_inside(t), false);
        for (int i = 0; i < 20; ++i)
            sensor.step(30.0, thermal.indoor_temperature_c(),
                        thermal.relative_humidity_pct(), thermal.heater_on());
    }

    const SimulationConfig& cfg;
    const double dt = kDynamicsDt;
    const double sample_period;

    csi::ChannelModel channel;
    csi::Receiver receiver;
    /// Extra links (index i = link i+1); empty for single-link runs.
    std::vector<csi::ChannelModel> link_channels;
    std::vector<csi::Receiver> link_receivers;
    ThermalModel thermal;
    EnvironmentSensor sensor;
    OccupantModel occupants;
    // wifisense-lint: allow(det.raw-mt19937) seeded in the ctor init list
    // with the event substream (cfg.seed ^ 0x66).
    std::mt19937_64 event_rng;
    std::uniform_real_distribution<double> uni{0.0, 1.0};

    common::FaultPlan fault_plan;
    double env_skew;
    /// Reported (t, temperature, humidity) history backing the clock skew:
    /// with skew, the record carries the env reading from `skew` seconds ago.
    std::deque<std::array<double, 3>> env_history;

    bool furniture_displaced = false;
    double window_open_until = -1.0;
    double active_until = -1.0;
    int last_shuffle_day;

    const std::size_t n_samples;
    const std::size_t n_ticks;
    std::size_t next_sample = 0;

    // Per-tick latches: written by FurnitureVentilationLP / OccupantLP, read
    // by the LPs that dispatch after them at the same timestamp.
    int inside = 0;
    bool window_open = false;
    double extra_ach = 0.0;

    std::vector<TickJob> window;
    std::size_t window_packets = 0;
};

/// Base for the once-per-tick LPs: registers at the collection start and
/// re-schedules itself every kDynamicsDt until the tick budget is spent.
/// Activation times are computed as start + dt*tick — the same expression in
/// every LP — so the five processes coincide at identical timestamps and the
/// queue's lp_id tie-break alone fixes their per-tick order.
class TickProcess : public LogicalProcess {
public:
    explicit TickProcess(SimWorld& world) : w_(&world) {}

    void register_with(EventQueue& queue) {
        lp_id_ = queue.add_process(this);
        queue.schedule(w_->cfg.start_timestamp, lp_id_);
    }

    void on_event(double t, EventQueue& queue) final {
        step(t, queue);
        ++tick_;
        if (tick_ < w_->n_ticks)
            queue.schedule(
                w_->cfg.start_timestamp + w_->dt * static_cast<double>(tick_),
                lp_id_);
    }

protected:
    virtual void step(double t, EventQueue& queue) = 0;

    SimWorld* w_;
    std::size_t lp_id_ = 0;
    std::size_t tick_ = 0;
};

/// LP 0 — furniture + ventilation: nightly cleaning-crew shuffles, occupant
/// mini-shuffles, the rearrangement event, slow channel drift, and the
/// window-opening stream. Sole owner of event_rng (^0x66).
class FurnitureVentilationLP final : public TickProcess {
public:
    using TickProcess::TickProcess;

private:
    // wifisense-lint: allow-call(uni) uniform draw from the world's event substream (seeded cfg.seed ^ 0x66 in the SimWorld ctor): deterministic under the fixed-seed contract
    void step(double t, EventQueue&) override {
        SimWorld& w = *w_;
        const SimulationConfig& cfg = w.cfg;

        // --- nightly cleaning-crew shuffle (anchored) ----------------------
        if (cfg.furniture.enabled && cfg.furniture.nightly_shuffle_m > 0.0) {
            const int day = data::day_index(t);
            if (day != w.last_shuffle_day &&
                data::hour_of_day(t) >= cfg.furniture.nightly_hour) {
                w.channel.shuffle_furniture(cfg.furniture.nightly_shuffle_m,
                                            w.event_rng,
                                            cfg.furniture.nightly_fraction);
                w.last_shuffle_day = day;
            }
        }

        // --- mini-shuffles (occupants by day, ambient churn when empty) ----
        if (cfg.furniture.enabled && !w.furniture_displaced) {
            const bool someone_inside = w.occupants.count_inside(t) > 0;
            const double rate = someone_inside
                                    ? cfg.furniture.daily_shuffle_rate_per_h
                                    : cfg.furniture.empty_shuffle_rate_per_h;
            if (rate > 0.0 && w.uni(w.event_rng) < rate * w.dt / 3600.0)
                w.channel.shuffle_furniture(
                    someone_inside ? cfg.furniture.daily_shuffle_m
                                   : cfg.furniture.empty_shuffle_m,
                    w.event_rng,
                    someone_inside ? cfg.furniture.daily_shuffle_fraction
                                   : cfg.furniture.empty_shuffle_fraction);
        }

        // --- furniture event ----------------------------------------------
        if (cfg.furniture.enabled) {
            if (!w.furniture_displaced && t >= cfg.furniture.start &&
                t < cfg.furniture.end) {
                w.channel.perturb_furniture(cfg.furniture.magnitude_m,
                                            w.event_rng);
                w.furniture_displaced = true;
            } else if (w.furniture_displaced && t >= cfg.furniture.end) {
                // Restoration is anchored: the room comes back to its usual
                // configuration cloud with a small fresh displacement.
                w.channel.shuffle_furniture(cfg.furniture.residual_m,
                                            w.event_rng);
                w.furniture_displaced = false;
            }
        }

        w.channel.advance_drift(w.dt, w.event_rng);

        // --- window-opening draw ------------------------------------------
        // count_inside(t) is a pure schedule lookup (independent of the
        // agents' step), so drawing here — before OccupantLP runs this tick —
        // consumes the event stream exactly as the historical loop did after
        // the step.
        if (w.occupants.count_inside(t) > 0 && t > w.window_open_until) {
            const double p_open = cfg.window_open_rate_per_h * w.dt / 3600.0;
            if (w.uni(w.event_rng) < p_open)
                w.window_open_until = t + cfg.window_open_len_s;
        }
        w.window_open = t <= w.window_open_until;
        // While the room is being rearranged the corridor door is propped
        // open and windows are cracked, so the furniture event strongly
        // ventilates the room — fold 4 stays cold AND dry despite occupancy,
        // which is what defeats the Env-only models in Table IV.
        const bool event_active = cfg.furniture.enabled &&
                                  t >= cfg.furniture.start &&
                                  t < cfg.furniture.end;
        w.extra_ach =
            event_active ? cfg.furniture.event_air_changes_per_h : 0.0;
    }
};

/// LP 1 — occupant agents: schedules + motion (^0x55), plus the sticky
/// activity annotation (no RNG; read only by the CSI LP later this tick).
class OccupantLP final : public TickProcess {
public:
    using TickProcess::TickProcess;

private:
    void step(double t, EventQueue&) override {
        SimWorld& w = *w_;
        w.occupants.step(t, w.dt);
        w.inside = w.occupants.count_inside(t);
        if (w.inside > 0 && w.occupants.any_walking())
            w.active_until = t + w.cfg.activity_hold_s;
    }
};

/// LP 2 — thermal zone: heat/moisture balance driven by the occupancy and
/// ventilation latches of the two LPs before it (^0x33).
class ThermalLP final : public TickProcess {
public:
    using TickProcess::TickProcess;

private:
    void step(double t, EventQueue&) override {
        SimWorld& w = *w_;
        w.thermal.step(t, w.dt, w.inside, w.window_open, w.extra_ach);
    }
};

/// LP 3 — environmental sensor: first-order response to the zone state,
/// including fault-plan stalls (^0x44).
class SensorLP final : public TickProcess {
public:
    using TickProcess::TickProcess;

private:
    void step(double t, EventQueue&) override {
        SimWorld& w = *w_;
        if (w.fault_plan.active())
            w.sensor.set_stalled(w.fault_plan.env_stalled(t));
        w.sensor.step(w.dt, w.thermal.indoor_temperature_c(),
                      w.thermal.relative_humidity_pct(), w.thermal.heater_on());
    }
};

/// LP 4 — CSI sampling: captures every sample instant inside the tick (rates
/// above the tick rate reuse the tick's channel state but draw fresh receiver
/// noise per packet), defers the expensive synthesis to the parallel flush,
/// and stops the run once the sample budget is spent.
class CsiSamplingLP final : public TickProcess {
public:
    /// Exactly one of `sink` / `link_sink` is non-null; the link sink routes
    /// through the multi-link flush.
    CsiSamplingLP(SimWorld& world,
                  const std::function<void(const data::SampleRecord&)>* sink,
                  const LinkRecordSink* link_sink)
        : TickProcess(world), sink_(sink), link_sink_(link_sink) {}

private:
    void step(double t, EventQueue& queue) override {
        SimWorld& w = *w_;
        common::TraceScope span("sim.tick");

        double sample_time = w.cfg.start_timestamp +
                             w.sample_period * static_cast<double>(w.next_sample);
        if (sample_time < t + w.dt && w.next_sample < w.n_samples) {
            TickJob job;
            job.env = csi::EnvironmentState{
                w.thermal.indoor_temperature_c(),
                csi::vapor_density_gm3(w.thermal.indoor_temperature_c(),
                                       w.thermal.relative_humidity_pct())};
            job.bodies = w.occupants.bodies();
            job.scatterers = w.channel.scatterer_positions();
            job.temperature_c = static_cast<float>(w.sensor.read_temperature_c());
            job.humidity_pct = static_cast<float>(w.sensor.read_humidity_pct());
            if (w.env_skew > 0.0) {
                // Clock skew between the CSI and env streams: the row at CSI
                // time t carries the env reading from t - skew. The reads
                // above still happen (RNG order is preserved); only the
                // reported values are delayed.
                w.env_history.push_back({t,
                                         static_cast<double>(job.temperature_c),
                                         static_cast<double>(job.humidity_pct)});
                while (w.env_history.size() > 1 &&
                       w.env_history[1][0] <= t - w.env_skew)
                    w.env_history.pop_front();
                job.temperature_c = static_cast<float>(w.env_history.front()[1]);
                job.humidity_pct = static_cast<float>(w.env_history.front()[2]);
            }
            job.occupant_count = static_cast<std::uint8_t>(w.inside);
            job.occupancy = w.inside > 0 ? 1 : 0;
            job.activity = static_cast<std::uint8_t>(
                w.inside == 0           ? data::ActivityLabel::kEmpty
                : t <= w.active_until   ? data::ActivityLabel::kActive
                                        : data::ActivityLabel::kSedentary);

            while (sample_time < t + w.dt && w.next_sample < w.n_samples) {
                PacketJob packet;
                packet.timestamp = sample_time;
                // Always drawn — dropped packets consume their noise exactly
                // like delivered ones, so the surviving packets of a faulty
                // run stay bitwise equal to the same packets of the
                // fault-free run.
                packet.noise =
                    w.receiver.draw_packet_noise(w.cfg.channel.n_subcarriers);
                // Extra links advance their own substreams in lockstep —
                // also for lost packets, so every link's noise stream is a
                // pure function of the sample index.
                if (!w.link_receivers.empty()) {
                    packet.link_noise.reserve(w.link_receivers.size());
                    for (csi::Receiver& link_rx : w.link_receivers)
                        packet.link_noise.push_back(link_rx.draw_packet_noise(
                            w.cfg.channel.n_subcarriers));
                }
                const bool lost = w.fault_plan.active() &&
                                  (packet.noise.fault.dropped ||
                                   w.fault_plan.csi_offline(sample_time));
                if (!lost) job.packets.push_back(std::move(packet));
                ++w.next_sample;
                sample_time = w.cfg.start_timestamp +
                              w.sample_period * static_cast<double>(w.next_sample);
            }
            w.window_packets += job.packets.size();
            if (!job.packets.empty()) w.window.push_back(std::move(job));
            if (w.window_packets >= kFlushPackets) {
                if (link_sink_ != nullptr)
                    flush_window_links(w.window, w.channel, w.receiver,
                                       w.link_channels, w.link_receivers,
                                       *link_sink_);
                else
                    flush_window(w.window, w.channel, w.receiver, *sink_);
                w.window_packets = 0;
            }
        }

        // Sample budget spent: stop the queue. Events already scheduled for
        // the next tick are discarded, not dispatched, so no LP consumes
        // randomness past this point — matching the historical loop, whose
        // `next_sample < n_samples` bound was checked before each tick.
        if (w.next_sample >= w.n_samples) queue.request_stop();
    }

    const std::function<void(const data::SampleRecord&)>* sink_;
    const LinkRecordSink* link_sink_;
};

}  // namespace

OfficeSimulator::OfficeSimulator(SimulationConfig cfg) : cfg_(cfg) {
    if (cfg_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("OfficeSimulator: non-positive sample rate");
    if (cfg_.duration_s <= 0.0)
        throw std::invalid_argument("OfficeSimulator: non-positive duration");
}

namespace {

/// Shared DES driver: builds the world, wires the five LPs, runs the queue,
/// flushes the tail window. Exactly one of the sinks is non-null.
void run_simulation(const SimulationConfig& cfg,
                    const std::function<void(const data::SampleRecord&)>* sink,
                    const LinkRecordSink* link_sink) {
    // Dynamics and event randomness advance on a fixed tick regardless of
    // the CSI sampling rate, so a given seed produces the *same world*
    // (schedules, furniture shuffles, window events, thermal trajectory) at
    // every rate — only the measurement density changes.
    SimWorld world(cfg, /*with_links=*/link_sink != nullptr);

    FurnitureVentilationLP furniture_lp(world);
    OccupantLP occupant_lp(world);
    ThermalLP thermal_lp(world);
    SensorLP sensor_lp(world);
    CsiSamplingLP csi_lp(world, sink, link_sink);

    if (world.n_ticks > 0 && world.n_samples > 0) {
        EventQueue queue;
        // Registration order = per-tick dispatch order (lp_id tie-break).
        furniture_lp.register_with(queue);
        occupant_lp.register_with(queue);
        thermal_lp.register_with(queue);
        sensor_lp.register_with(queue);
        csi_lp.register_with(queue);
        queue.run();
    }
    if (link_sink != nullptr)
        flush_window_links(world.window, world.channel, world.receiver,
                           world.link_channels, world.link_receivers,
                           *link_sink);
    else
        flush_window(world.window, world.channel, world.receiver, *sink);
}

}  // namespace

void OfficeSimulator::run(const std::function<void(const data::SampleRecord&)>& sink) {
    run_simulation(cfg_, &sink, nullptr);
}

void OfficeSimulator::run_links(
    const std::function<void(std::uint8_t, const data::SampleRecord&)>& sink) {
    run_simulation(cfg_, nullptr, &sink);
}

data::Dataset OfficeSimulator::run() {
    data::Dataset dataset;
    dataset.reserve(
        static_cast<std::size_t>(cfg_.duration_s * cfg_.sample_rate_hz) + 1);
    run([&dataset](const data::SampleRecord& r) { dataset.push_back(r); });
    return dataset;
}

std::vector<csi::Vec3> default_link_positions(const csi::RoomGeometry& room,
                                              std::size_t n_links) {
    std::vector<csi::Vec3> out;
    out.reserve(n_links);
    if (n_links == 0) return out;
    out.push_back(room.rx);
    for (std::size_t i = 1; i < n_links; ++i) {
        // Spread the extra receivers along the far wall at router height so
        // every link sees the occupants through a distinct multipath
        // geometry.
        const double frac =
            static_cast<double>(i) / static_cast<double>(n_links);
        out.push_back(csi::Vec3{room.lx * (0.15 + 0.7 * frac), room.ly - 0.4,
                                room.rx.z});
    }
    return out;
}

SimulationConfig paper_config(double sample_rate_hz, std::uint64_t seed) {
    SimulationConfig cfg;
    cfg.sample_rate_hz = sample_rate_hz;
    cfg.seed = seed;
    return cfg;
}

}  // namespace wifisense::envsim
