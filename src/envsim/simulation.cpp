#include "envsim/simulation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/fault.hpp"
#include "common/parallel.hpp"

namespace wifisense::envsim {

namespace {

// ---------------------------------------------------------------------------
// Two-phase measurement pipeline.
//
// Phase 1 (serial): the world-tick loop in run() advances every stochastic
// component and consumes ALL randomness in the historical order; for each
// emitting tick it captures a TickJob — the pure inputs of the measurement:
// environment, bodies, the scatterer snapshot, the sensor/label fields, and
// the pre-drawn receiver noise of each packet.
//
// Phase 2 (parallel): flush_window() synthesizes the records — one CFR per
// tick, one impairment pass per packet — from those snapshots. Each tick job
// writes to its own pre-computed slot range, and the records are handed to
// the sink in timestamp order afterwards. No RNG is touched here, so the
// emitted stream is bitwise identical to the historical single-pass loop at
// every thread count (threads=1 included).
// ---------------------------------------------------------------------------

struct PacketJob {
    double timestamp = 0.0;
    csi::PacketNoise noise;
};

struct TickJob {
    csi::EnvironmentState env;
    std::vector<csi::BodyState> bodies;
    std::vector<csi::Vec3> scatterers;
    float temperature_c = 0.0f;
    float humidity_pct = 0.0f;
    std::uint8_t occupant_count = 0;
    int occupancy = 0;
    std::uint8_t activity = 0;
    std::vector<PacketJob> packets;
};

/// Packets buffered before a flush; bounds memory to a few MB while keeping
/// every flush wide enough to occupy the pool.
constexpr std::size_t kFlushPackets = 4096;

void flush_window(std::vector<TickJob>& window, const csi::ChannelModel& channel,
                  const csi::Receiver& receiver,
                  const std::function<void(const data::SampleRecord&)>& sink) {
    if (window.empty()) return;
    std::vector<std::size_t> offset(window.size() + 1, 0);
    for (std::size_t i = 0; i < window.size(); ++i)
        offset[i + 1] = offset[i] + window[i].packets.size();

    std::vector<data::SampleRecord> records(offset.back());
    common::parallel_for(
        window.size(),
        [&](std::size_t ti) {
            const TickJob& job = window[ti];
            const std::vector<std::complex<double>> cfr =
                channel.frequency_response(job.env, job.bodies, job.scatterers);
            for (std::size_t p = 0; p < job.packets.size(); ++p) {
                const std::vector<float> amps =
                    receiver.apply_noise(cfr, job.packets[p].noise);
                data::SampleRecord& rec = records[offset[ti] + p];
                rec.timestamp = job.packets[p].timestamp;
                std::copy(amps.begin(), amps.end(), rec.csi.begin());
                rec.temperature_c = job.temperature_c;
                rec.humidity_pct = job.humidity_pct;
                rec.occupant_count = job.occupant_count;
                rec.occupancy = job.occupancy;
                rec.activity = job.activity;
            }
        },
        /*grain=*/4);

    for (const data::SampleRecord& rec : records) sink(rec);
    window.clear();
}

}  // namespace

OfficeSimulator::OfficeSimulator(SimulationConfig cfg) : cfg_(cfg) {
    if (cfg_.sample_rate_hz <= 0.0)
        throw std::invalid_argument("OfficeSimulator: non-positive sample rate");
    if (cfg_.duration_s <= 0.0)
        throw std::invalid_argument("OfficeSimulator: non-positive duration");
}

void OfficeSimulator::run(const std::function<void(const data::SampleRecord&)>& sink) {
    // Dynamics and event randomness advance on a fixed tick regardless of
    // the CSI sampling rate, so a given seed produces the *same world*
    // (schedules, furniture shuffles, window events, thermal trajectory) at
    // every rate — only the measurement density changes.
    const double dt = kDynamicsDt;
    const double sample_period = 1.0 / cfg_.sample_rate_hz;

    // Independent deterministic streams per component.
    csi::ChannelModel channel(cfg_.room, cfg_.channel, cfg_.seed ^ 0x11);
    csi::Receiver receiver(cfg_.receiver, cfg_.seed ^ 0x22);
    ThermalModel thermal(cfg_.thermal, cfg_.seed ^ 0x33);
    EnvironmentSensor sensor(cfg_.sensor, cfg_.seed ^ 0x44);
    OccupantModel occupants(cfg_.occupants, cfg_.room, cfg_.seed ^ 0x55);
    std::mt19937_64 event_rng(cfg_.seed ^ 0x66);
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    // Fault injection: the plan's decisions are pure functions of its own
    // seed (packet index / time window), so none of the streams above are
    // perturbed. An inactive plan leaves this function's behavior — and its
    // emitted bytes — exactly as before the fault layer existed.
    const common::FaultPlan fault_plan(cfg_.faults);
    if (fault_plan.active()) receiver.set_fault_plan(&fault_plan);
    const double env_skew = fault_plan.env_skew_s();
    // Reported (t, temperature, humidity) history backing the clock skew:
    // with skew, the record carries the env reading from `skew` seconds ago.
    std::deque<std::array<double, 3>> env_history;

    // Warm up the thermal state: simulate the morning before collection
    // starts (06:00 -> start) so the 15:08 initial condition is consistent
    // with a heated, occupied office rather than the config default.
    {
        const double warm_start =
            std::floor(cfg_.start_timestamp / data::kSecondsPerDay) *
                data::kSecondsPerDay +
            6.0 * 3600.0;
        for (double t = warm_start; t < cfg_.start_timestamp; t += 30.0)
            thermal.step(t, 30.0, occupants.count_inside(t), false);
        for (int i = 0; i < 20; ++i)
            sensor.step(30.0, thermal.indoor_temperature_c(),
                        thermal.relative_humidity_pct(), thermal.heater_on());
    }

    bool furniture_displaced = false;
    std::vector<csi::Vec3> pre_event_layout;
    double window_open_until = -1.0;
    double active_until = -1.0;
    int last_shuffle_day = data::day_index(cfg_.start_timestamp);

    const auto n_samples =
        static_cast<std::size_t>(std::llround(cfg_.duration_s * cfg_.sample_rate_hz));
    const auto n_ticks =
        static_cast<std::size_t>(std::llround(cfg_.duration_s / dt));
    std::size_t next_sample = 0;

    std::vector<TickJob> window;
    std::size_t window_packets = 0;

    for (std::size_t tick = 0; tick < n_ticks && next_sample < n_samples; ++tick) {
        const double t = cfg_.start_timestamp + dt * static_cast<double>(tick);
        // --- nightly cleaning-crew shuffle (anchored) -----------------------
        if (cfg_.furniture.enabled && cfg_.furniture.nightly_shuffle_m > 0.0) {
            const int day = data::day_index(t);
            if (day != last_shuffle_day &&
                data::hour_of_day(t) >= cfg_.furniture.nightly_hour) {
                channel.shuffle_furniture(cfg_.furniture.nightly_shuffle_m, event_rng,
                                          cfg_.furniture.nightly_fraction);
                last_shuffle_day = day;
            }
        }

        // --- mini-shuffles (occupants by day, ambient churn when empty) ----
        if (cfg_.furniture.enabled && !furniture_displaced) {
            const bool someone_inside = occupants.count_inside(t) > 0;
            const double rate = someone_inside
                                    ? cfg_.furniture.daily_shuffle_rate_per_h
                                    : cfg_.furniture.empty_shuffle_rate_per_h;
            if (rate > 0.0 && uni(event_rng) < rate * dt / 3600.0)
                channel.shuffle_furniture(
                    someone_inside ? cfg_.furniture.daily_shuffle_m
                                   : cfg_.furniture.empty_shuffle_m,
                    event_rng,
                    someone_inside ? cfg_.furniture.daily_shuffle_fraction
                                   : cfg_.furniture.empty_shuffle_fraction);
        }

        // --- furniture event ---------------------------------------------
        if (cfg_.furniture.enabled) {
            if (!furniture_displaced && t >= cfg_.furniture.start &&
                t < cfg_.furniture.end) {
                pre_event_layout = channel.furniture();
                channel.perturb_furniture(cfg_.furniture.magnitude_m, event_rng);
                furniture_displaced = true;
            } else if (furniture_displaced && t >= cfg_.furniture.end) {
                // Restoration is anchored: the room comes back to its usual
                // configuration cloud with a small fresh displacement.
                channel.shuffle_furniture(cfg_.furniture.residual_m, event_rng);
                furniture_displaced = false;
            }
        }

        // --- dynamics ------------------------------------------------------
        channel.advance_drift(dt, event_rng);
        occupants.step(t, dt);
        const int inside = occupants.count_inside(t);

        if (inside > 0 && t > window_open_until) {
            const double p_open = cfg_.window_open_rate_per_h * dt / 3600.0;
            if (uni(event_rng) < p_open) window_open_until = t + cfg_.window_open_len_s;
        }
        const bool window_open = t <= window_open_until;
        // While the room is being rearranged the corridor door is propped
        // open and windows are cracked, so the furniture event strongly
        // ventilates the room — fold 4 stays cold AND dry despite occupancy,
        // which is what defeats the Env-only models in Table IV.
        const bool event_active = cfg_.furniture.enabled &&
                                  t >= cfg_.furniture.start &&
                                  t < cfg_.furniture.end;
        const double extra_ach =
            event_active ? cfg_.furniture.event_air_changes_per_h : 0.0;

        thermal.step(t, dt, inside, window_open, extra_ach);
        if (fault_plan.active()) sensor.set_stalled(fault_plan.env_stalled(t));
        sensor.step(dt, thermal.indoor_temperature_c(), thermal.relative_humidity_pct(),
                    thermal.heater_on());
        if (inside > 0 && occupants.any_walking())
            active_until = t + cfg_.activity_hold_s;

        // --- measurement: capture every sample instant that falls inside
        // this tick (rates above the tick rate reuse the tick's channel state
        // but draw fresh receiver noise per packet). The expensive synthesis
        // itself is deferred to the parallel flush -----------------------------
        double sample_time =
            cfg_.start_timestamp + sample_period * static_cast<double>(next_sample);
        if (sample_time >= t + dt) continue;

        TickJob job;
        job.env = csi::EnvironmentState{
            thermal.indoor_temperature_c(),
            csi::vapor_density_gm3(thermal.indoor_temperature_c(),
                                   thermal.relative_humidity_pct())};
        job.bodies = occupants.bodies();
        job.scatterers = channel.scatterer_positions();
        job.temperature_c = static_cast<float>(sensor.read_temperature_c());
        job.humidity_pct = static_cast<float>(sensor.read_humidity_pct());
        if (env_skew > 0.0) {
            // Clock skew between the CSI and env streams: the row at CSI
            // time t carries the env reading from t - skew. The reads above
            // still happen (RNG order is preserved); only the reported
            // values are delayed.
            env_history.push_back({t, static_cast<double>(job.temperature_c),
                                   static_cast<double>(job.humidity_pct)});
            while (env_history.size() > 1 && env_history[1][0] <= t - env_skew)
                env_history.pop_front();
            job.temperature_c = static_cast<float>(env_history.front()[1]);
            job.humidity_pct = static_cast<float>(env_history.front()[2]);
        }
        job.occupant_count = static_cast<std::uint8_t>(inside);
        job.occupancy = inside > 0 ? 1 : 0;
        job.activity = static_cast<std::uint8_t>(
            inside == 0          ? data::ActivityLabel::kEmpty
            : t <= active_until  ? data::ActivityLabel::kActive
                                 : data::ActivityLabel::kSedentary);

        while (sample_time < t + dt && next_sample < n_samples) {
            PacketJob packet;
            packet.timestamp = sample_time;
            // Always drawn — dropped packets consume their noise exactly like
            // delivered ones, so the surviving packets of a faulty run stay
            // bitwise equal to the same packets of the fault-free run.
            packet.noise = receiver.draw_packet_noise(cfg_.channel.n_subcarriers);
            const bool lost = fault_plan.active() &&
                              (packet.noise.fault.dropped ||
                               fault_plan.csi_offline(sample_time));
            if (!lost) job.packets.push_back(std::move(packet));
            ++next_sample;
            sample_time =
                cfg_.start_timestamp + sample_period * static_cast<double>(next_sample);
        }
        window_packets += job.packets.size();
        if (!job.packets.empty()) window.push_back(std::move(job));
        if (window_packets >= kFlushPackets) {
            flush_window(window, channel, receiver, sink);
            window_packets = 0;
        }
    }
    flush_window(window, channel, receiver, sink);
}

data::Dataset OfficeSimulator::run() {
    data::Dataset dataset;
    dataset.reserve(
        static_cast<std::size_t>(cfg_.duration_s * cfg_.sample_rate_hz) + 1);
    run([&dataset](const data::SampleRecord& r) { dataset.push_back(r); });
    return dataset;
}

SimulationConfig paper_config(double sample_rate_hz, std::uint64_t seed) {
    SimulationConfig cfg;
    cfg.sample_rate_hz = sample_rate_hz;
    cfg.seed = seed;
    return cfg;
}

}  // namespace wifisense::envsim
