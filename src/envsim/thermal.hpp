// Two-node (air + building structure) thermal and moisture model of the
// office.
//
//   C_a dT_a/dt = Q_heater + Q_occupants - U_s (T_a - T_s) - U_o (T_a - T_out)
//   C_s dT_s/dt =                          U_s (T_a - T_s) - U_g (T_s - T_out)
//   V  dW/dt    = m_occupants - lambda_v V (W - W_out)
//
// The air node is light (fast heater response, hours-scale decay toward the
// structure), the structure node is massive (days-scale), so nights cool to
// ~18 degC rather than to the outdoor temperature — matching the Table III
// fold ranges. The thermostat is a scheduled hysteresis relay; the final-day
// heating fault produces the cold-but-occupied fold 4 and the boosted
// catch-up produces the hot fold 5.
//
// Moisture balance is per-occupant vapour release against ventilation
// exchange with dry January outdoor air; relative humidity follows from the
// Magnus saturation curve. The tuning reproduces the paper's Section V-A
// couplings (T-H rho ~ +0.45, T-occ ~ +0.44, H-occ ~ +0.35).
#pragma once

#include <cstdint>
#include <random>

namespace wifisense::envsim {

struct ThermalConfig {
    double volume_m3 = 216.0;  ///< 12 x 6 x 3 m office

    double air_capacity_j_per_k = 5.0e6;        ///< air + light furnishings
    double structure_capacity_j_per_k = 1.5e8;  ///< walls/floor thermal mass
    double air_structure_w_per_k = 900.0;
    double air_outdoor_w_per_k = 70.0;   ///< windows/infiltration
    double structure_outdoor_w_per_k = 60.0;

    double heater_power_w = 8'000.0;
    double occupant_heat_w = 120.0;
    double occupant_vapor_g_per_h = 300.0;  ///< breathing + kettles + plants
    double base_air_changes_per_h = 1.0;
    double occupant_air_changes_per_h = 0.10;  ///< extra ACH per person (door traffic)
    double window_air_changes_per_h = 2.5;     ///< extra ACH while a window is open

    double outdoor_temp_mean_c = 3.0;  ///< January in the Po valley
    double outdoor_temp_amplitude_c = 4.0;
    double outdoor_temp_peak_hour = 15.0;
    double outdoor_vapor_gm3 = 3.8;
    /// A mild, moist front moves in over the collection window; both indoor
    /// temperature and humidity ride it upward together, giving the positive
    /// multi-day T-H coupling the paper measures (rho ~ 0.45).
    double outdoor_temp_trend_c_per_day = 0.0;
    double outdoor_vapor_trend_per_day = 0.0;

    double setpoint_c = 22.0;
    /// Occupants fiddle with the thermostat: deterministic per-day offset in
    /// [0, setpoint_day_jitter_c) added to the setpoint. Widens the training
    /// temperature range (the paper's training fold spans 18.7-40.1 degC) so
    /// tree models see warm-occupied samples.
    double setpoint_day_jitter_c = 3.0;
    double hysteresis_c = 0.4;
    double heating_on_hour = 7.25;
    double heating_off_hour = 21.5;

    /// Day-index with the heating fault (3 = Friday, Jan 7): heating stays
    /// off until fault_end_hour, then runs in catch-up mode with a boosted
    /// setpoint — producing the cold-occupied fold 4 and the hot fold 5.
    int fault_day = 3;
    double fault_end_hour = 12.75;
    double fault_boost_setpoint_c = 25.0;

    double initial_air_c = 22.0;
    double initial_structure_c = 19.8;
    double initial_vapor_gm3 = 6.0;
};

class ThermalModel {
public:
    ThermalModel(ThermalConfig cfg, std::uint64_t seed);

    /// Advance by dt seconds. `occupants` is the current headcount,
    /// `window_open` adds the window ventilation term, and `extra_ach_per_h`
    /// adds further air changes (e.g. a door propped open during a
    /// rearrangement event).
    void step(double timestamp, double dt, int occupants, bool window_open,
              double extra_ach_per_h = 0.0);

    double indoor_temperature_c() const { return air_; }
    double structure_temperature_c() const { return structure_; }
    double vapor_density_gm3() const { return vapor_; }
    /// True relative humidity (%) from the Magnus saturation curve.
    double relative_humidity_pct() const;

    bool heater_on() const { return heater_on_; }
    double outdoor_temperature_c(double timestamp) const;

    /// Active thermostat setpoint at the given time (0 when heating is
    /// scheduled off), exposed for tests.
    double active_setpoint(double timestamp) const;

private:
    ThermalConfig cfg_;
    double air_;
    double structure_;
    double vapor_;
    bool heater_on_ = false;
    std::mt19937_64 rng_;
    std::normal_distribution<double> noise_{0.0, 1.0};
};

/// Saturation vapour density (g/m^3) at a temperature, Magnus formula.
double saturation_vapor_density_gm3(double temperature_c);

}  // namespace wifisense::envsim
