// End-to-end data-collection simulator: wires the occupant agents, the
// thermal model, the environmental sensor, the multipath channel, and the
// Nexmon-style receiver into the 74.5-hour collection timeline of
// Section IV-A / V-A and emits Table-I records.
//
// The paper samples CSI at 20 Hz (5.36 M rows); the rate here is
// configurable — the default 2 Hz keeps the full timeline (so every
// distributional property of Tables II/III holds) at 1/10 the row count.
//
// Execution model: the world advances serially on the fixed 0.5 s tick
// (every RNG stream is consumed in historical order), while the expensive
// measurement synthesis — CFR evaluation and receiver impairments — runs in
// parallel over windowed tick shards with pre-drawn receiver noise, stitched
// back in timestamp order. A seed therefore defines one dataset bitwise,
// independent of the thread count (see DESIGN.md, "Concurrency model").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/fault.hpp"
#include "csi/channel.hpp"
#include "csi/geometry.hpp"
#include "csi/receiver.hpp"
#include "data/dataset.hpp"
#include "data/simtime.hpp"
#include "envsim/occupants.hpp"
#include "envsim/sensor.hpp"
#include "envsim/thermal.hpp"

namespace wifisense::envsim {

struct FurnitureEvent {
    bool enabled = true;
    /// Nightly cleaning-crew shuffle: every day at `nightly_hour` a subset
    /// of scatterers jumps to a fresh anchored position (original layout +
    /// up to `nightly_shuffle_m`). Each day's empty-room CSI therefore sits
    /// in a slightly different configuration — the day-to-day variation that
    /// keeps a single linear boundary from fitting "empty" across days
    /// (Table IV, Logistic/CSI).
    double nightly_shuffle_m = 0.02;
    double nightly_fraction = 0.6;  ///< chance each scatterer is moved
    double nightly_hour = 4.0;

    /// Occupants also nudge furniture while working ("moving chairs ...
    /// without a predefined pattern", Section V-A): Poisson mini-shuffles
    /// while the room is occupied. These populate the training fold with
    /// many layout configurations, which is what lets the nonlinear models
    /// generalize across the nightly shuffles while the linear one cannot.
    double daily_shuffle_rate_per_h = 0.4;
    double daily_shuffle_m = 0.02;
    double daily_shuffle_fraction = 0.25;

    /// The room is never perfectly still even when empty (HVAC vibration,
    /// guard rounds, overnight cleaning passes): a slower Poisson shuffle
    /// that runs while the room is unoccupied. Without it the empty class
    /// would only ever be observed in a handful of static layouts and no
    /// model could generalize to the post-cleaning test nights.
    double empty_shuffle_rate_per_h = 0.25;
    double empty_shuffle_m = 0.015;
    double empty_shuffle_fraction = 0.2;
    /// Default window: the morning of the final day (inside test fold 4) the
    /// room is rearranged for a meeting and restored afterwards — the
    /// "furniture layout does change" condition that dents every model's
    /// fold-4 accuracy in Table IV.
    double start = 3.0 * data::kSecondsPerDay + 8.75 * 3600.0;
    double end = 3.0 * data::kSecondsPerDay + 13.1 * 3600.0;
    double magnitude_m = 0.9;
    /// Residual displacement left after the event (furniture never goes back
    /// exactly where it was).
    double residual_m = 0.02;
    /// Extra air changes while the event runs (door propped to the corridor,
    /// windows cracked during the rearrangement): keeps fold 4 cold AND dry,
    /// which is what defeats the Env-only models in Table IV.
    double event_air_changes_per_h = 6.0;
};

/// Fixed world-dynamics tick: occupant motion, thermal integration, and
/// every stochastic event stream advance at this step regardless of the CSI
/// sampling rate, so a seed defines one world and the rate only controls
/// measurement density. Rates above 1/kDynamicsDt are clamped to one sample
/// per tick.
inline constexpr double kDynamicsDt = 0.5;

struct SimulationConfig {
    double start_timestamp = data::kCollectionStart;
    double duration_s = data::kCollectionDuration;
    double sample_rate_hz = 2.0;
    std::uint64_t seed = 7;

    csi::RoomGeometry room;
    csi::ChannelConfig channel;
    csi::ReceiverConfig receiver;
    ThermalConfig thermal;
    SensorConfig sensor;
    OccupantConfig occupants;
    FurnitureEvent furniture;

    /// Deterministic fault injection (common/fault.hpp): frame drops, outage
    /// bursts, amplitude corruption, subcarrier dropout, env-sensor stalls
    /// and CSI<->env clock skew. Fault decisions come from their own seeded
    /// substreams and never consume world randomness, so the default
    /// (all-zero) config emits a stream bitwise identical to a build without
    /// this field, and a faulty run's surviving packets are bitwise equal to
    /// the corresponding packets of the fault-free run.
    common::FaultConfig faults;

    /// Additional receiver positions for multi-link runs: link 0 is the
    /// paper's receiver at room.rx; extra_rx[i] becomes link i+1, observing
    /// the same room (same occupants, furniture, thermal state, scatterer
    /// drift) through its own geometry and its own receiver noise stream.
    /// Only run_links() looks at this — run() always emits the single-link
    /// stream, bitwise identical whether or not extra links are configured.
    std::vector<csi::Vec3> extra_rx;

    /// Mean window-opening events per occupied hour (ventilation bursts).
    double window_open_rate_per_h = 0.08;
    double window_open_len_s = 300.0;

    /// Activity annotation stickiness: a sample is labelled "active" if any
    /// occupant walked within this trailing horizon, mirroring how a human
    /// annotator labels motion segments rather than instants.
    double activity_hold_s = 10.0;
};

class OfficeSimulator {
public:
    explicit OfficeSimulator(SimulationConfig cfg);

    /// Run the full timeline and return the dataset.
    data::Dataset run();

    /// Streaming variant: invokes `sink` per record without storing them.
    void run(const std::function<void(const data::SampleRecord&)>& sink);

    /// Multi-link streaming run over 1 + extra_rx.size() receiver links.
    /// Every link samples the identical world at the identical instants;
    /// records arrive grouped per sample instant, links in ascending id
    /// order. Link 0's records are bitwise identical to what run() emits —
    /// the extra links draw from their own receiver substreams and never
    /// touch link 0's RNGs — and with extra_rx empty this IS run() with a
    /// link id prepended.
    void run_links(
        const std::function<void(std::uint8_t, const data::SampleRecord&)>& sink);

    const SimulationConfig& config() const { return cfg_; }

private:
    SimulationConfig cfg_;
};

/// Evenly spread receiver positions for an n_links deployment: index 0 is
/// room.rx (the paper's receiver); the rest sit along the far wall at the
/// same height. Feed [1, n) into SimulationConfig::extra_rx.
std::vector<csi::Vec3> default_link_positions(const csi::RoomGeometry& room,
                                              std::size_t n_links);

/// The configuration used by all paper-reproduction benches: full 74.5 h
/// timeline at the given rate with the default seeds.
SimulationConfig paper_config(double sample_rate_hz = 2.0,
                              std::uint64_t seed = 7);

}  // namespace wifisense::envsim
