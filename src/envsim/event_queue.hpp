// Discrete-event core for the environment simulator (the ROOT-Sim idiom,
// scaled down): logical processes (LPs) register with an EventQueue, events
// are timestamped activations of one LP, and the queue dispatches them in
// deterministic order.
//
// Determinism contract — the whole point of this queue over a plain loop:
//   * events are ordered by (time, lp_id, seq): two events at the same
//     timestamp dispatch in LP-registration order, and two events for the
//     same LP at the same time dispatch in scheduling order;
//   * scheduling into the past throws (causality violation), so a run is a
//     single non-decreasing sweep over simulated time;
//   * the queue itself consumes no randomness — every stochastic decision
//     lives inside an LP with its own substream RNG (common/rng.hpp).
// A fixed set of LPs plus fixed per-LP RNG substreams therefore defines one
// execution bitwise, which is what lets the fleet layer fan thousands of
// rooms across threads while keeping the concatenated output byte-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace wifisense::envsim {

class EventQueue;

/// One logical process: a state machine activated at discrete timestamps.
/// `on_event` runs the LP's work for simulated time `t` and may schedule
/// future activations (of itself or of other LPs) on the queue.
class LogicalProcess {
public:
    virtual ~LogicalProcess() = default;
    virtual void on_event(double t, EventQueue& queue) = 0;
};

class EventQueue {
public:
    /// Register a process; the returned id is its registration index and the
    /// secondary sort key for same-timestamp events (lower id runs first).
    std::size_t add_process(LogicalProcess* lp);

    /// Schedule an activation of `lp_id` at simulated time `t`. Throws
    /// std::invalid_argument if `t` precedes the current dispatch time or
    /// `lp_id` is unknown.
    void schedule(double t, std::size_t lp_id);

    /// Dispatch events in (time, lp_id, seq) order until the queue is empty
    /// or an LP calls request_stop(). Pending events past a stop are
    /// discarded, not dispatched — their LPs never observe them.
    void run();

    /// Ask the dispatch loop to stop after the current event returns.
    void request_stop() { stop_requested_ = true; }

    /// Timestamp of the event being (or last) dispatched.
    double now() const { return now_; }

    /// Total events dispatched so far (diagnostics / tests).
    std::uint64_t dispatched() const { return dispatched_; }

    std::size_t pending() const { return heap_.size(); }

private:
    struct Event {
        double time;
        std::size_t lp;
        std::uint64_t seq;
    };
    struct After {  // priority_queue is a max-heap: "After" yields a min-heap
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            if (a.lp != b.lp) return a.lp > b.lp;
            return a.seq > b.seq;
        }
    };

    std::vector<LogicalProcess*> processes_;
    std::priority_queue<Event, std::vector<Event>, After> heap_;
    double now_ = 0.0;
    bool started_ = false;
    bool stop_requested_ = false;
    std::uint64_t seq_ = 0;
    std::uint64_t dispatched_ = 0;
};

}  // namespace wifisense::envsim
