#include "envsim/occupants.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/simtime.hpp"

namespace wifisense::envsim {

namespace {

double clamp_hour(double h, double lo, double hi) { return std::clamp(h, lo, hi); }

}  // namespace

OccupantModel::OccupantModel(OccupantConfig cfg, csi::RoomGeometry room,
                             std::uint64_t seed)
    : cfg_(cfg), room_(room), rng_(seed) {
    if (cfg_.n_subjects == 0) throw std::invalid_argument("OccupantModel: no subjects");

    std::normal_distribution<double> norm(0.0, 1.0);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::exponential_distribution<double> exp_len(1.0 / cfg_.excursion_len_mean_h);

    // Desks: evenly spread through the deep half of the room, away from the
    // AP/RP1 keep-out strip.
    schedule_.resize(cfg_.n_subjects);
    subjects_.resize(cfg_.n_subjects);
    for (std::size_t s = 0; s < cfg_.n_subjects; ++s) {
        const double fx = (static_cast<double>(s % 3) + 0.5) / 3.0;
        const double fy = (static_cast<double>(s / 3 % 2) + 0.5) / 2.0;
        subjects_[s].desk = {1.0 + fx * (room_.lx - 2.0),
                             cfg_.keepout_y + 0.6 +
                                 fy * (room_.ly - cfg_.keepout_y - 1.2),
                             1.1};
        subjects_[s].position = subjects_[s].desk;
        subjects_[s].target = subjects_[s].desk;
    }

    // Whole-team per-day schedule shifts, drawn once.
    std::vector<double> day_offset(cfg_.n_days, 0.0);
    for (double& off : day_offset) off = cfg_.day_jitter_h * norm(rng_);

    // Draw the presence intervals for every subject and day.
    for (std::size_t s = 0; s < cfg_.n_subjects; ++s) {
        for (std::size_t day = 0; day < cfg_.n_days; ++day) {
            const double day_start = static_cast<double>(day) * data::kSecondsPerDay;
            if (data::is_weekend(day_start + 43'200.0)) continue;

            const bool late = static_cast<int>(day) == cfg_.late_day;
            // Subject 0 anchors the final day: present from arrival to after
            // the collection ends, no lunch/excursions — keeping fold 5
            // fully occupied as in Table III.
            const bool anchor = late && s == 0;
            // Heterogeneous attendance (some subjects are in most days, some
            // rarely) keeps the simultaneous-occupancy histogram decaying
            // like Table II instead of peaking at the team size.
            const double subject_factor =
                late ? 1.0 : 1.35 - 0.18 * static_cast<double>(s % 6);
            const double p_present = std::clamp(
                (late ? cfg_.late_day_present_prob : cfg_.present_prob) *
                    subject_factor,
                0.10, 0.95);
            if (!anchor && uni(rng_) > p_present) continue;

            // The late (final) day is pinned: fold 4/5 boundaries depend on it.
            const bool early = static_cast<int>(day) == cfg_.early_day;
            const double shift = late ? 0.0 : day_offset[day];
            const double arrival_h = clamp_hour(
                (late ? cfg_.late_day_arrival_mean_h : cfg_.arrival_mean_h) + shift +
                    (late ? cfg_.late_day_arrival_sd_h : cfg_.arrival_sd_h) * norm(rng_),
                6.5, late ? 10.5 : 11.5);
            const double dep_mean = late    ? cfg_.late_day_departure_mean_h
                                    : early ? cfg_.early_day_departure_mean_h
                                            : cfg_.departure_mean_h;
            const double dep_cap = late    ? 23.0
                                   : early ? cfg_.early_day_departure_latest_h
                                           : cfg_.departure_latest_h;
            double departure_h =
                clamp_hour(dep_mean + shift + cfg_.departure_sd_h * norm(rng_),
                           arrival_h + 1.0, dep_cap);
            if (anchor) departure_h = std::max(departure_h, 18.5);

            // Working day as one interval, then carve out lunch + excursions.
            std::vector<PresenceInterval> day_intervals{
                {day_start + arrival_h * 3600.0, day_start + departure_h * 3600.0}};

            const auto carve = [&](double out_start, double out_end) {
                std::vector<PresenceInterval> next;
                for (const PresenceInterval& iv : day_intervals) {
                    if (out_end <= iv.enter || out_start >= iv.leave) {
                        next.push_back(iv);
                        continue;
                    }
                    if (out_start > iv.enter)
                        next.push_back({iv.enter, std::max(iv.enter, out_start)});
                    if (out_end < iv.leave)
                        next.push_back({std::min(iv.leave, out_end), iv.leave});
                }
                day_intervals = std::move(next);
            };

            const double lunch_p =
                anchor ? 0.0 : (late ? cfg_.late_day_lunch_prob : cfg_.lunch_prob);
            if (uni(rng_) < lunch_p) {
                const double ls =
                    cfg_.lunch_start_mean_h + cfg_.lunch_start_sd_h * norm(rng_);
                const double ll = std::max(
                    0.2, cfg_.lunch_len_mean_h + cfg_.lunch_len_sd_h * norm(rng_));
                carve(day_start + ls * 3600.0, day_start + (ls + ll) * 3600.0);
            }

            // Poisson excursions over the working span.
            double cursor_h = arrival_h;
            std::exponential_distribution<double> gap(
                cfg_.excursion_rate_per_h * (late ? cfg_.late_day_excursion_mult : 1.0));
            while (!anchor) {
                cursor_h += gap(rng_);
                if (cursor_h >= departure_h) break;
                const double len_h = std::min(exp_len(rng_), 1.5);
                carve(day_start + cursor_h * 3600.0,
                      day_start + (cursor_h + len_h) * 3600.0);
                cursor_h += len_h;
            }

            for (const PresenceInterval& iv : day_intervals)
                if (iv.leave - iv.enter > 60.0) schedule_[s].push_back(iv);
        }
        std::sort(schedule_[s].begin(), schedule_[s].end(),
                  [](const PresenceInterval& a, const PresenceInterval& b) {
                      return a.enter < b.enter;
                  });
    }
}

bool OccupantModel::subject_inside(std::size_t subject, double timestamp) const {
    for (const PresenceInterval& iv : schedule_[subject])
        if (timestamp >= iv.enter && timestamp < iv.leave) return true;
    return false;
}

int OccupantModel::count_inside(double timestamp) const {
    int n = 0;
    for (std::size_t s = 0; s < schedule_.size(); ++s)
        if (subject_inside(s, timestamp)) ++n;
    return n;
}

csi::Vec3 OccupantModel::random_waypoint(std::mt19937_64& rng) const {
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> ux(0.5, room_.lx - 0.5);
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> uy(cfg_.keepout_y + 0.3, room_.ly - 0.4);
    return {ux(rng), uy(rng), 1.1};
}

void OccupantModel::enter_activity(SubjectState& s, Activity a, double now) {
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the model's own seeded substream engine: deterministic under the fixed-seed contract
    std::exponential_distribution<double> dwell(1.0);
    s.activity = a;
    switch (a) {
        case Activity::kSitting:
            s.target = s.desk;
            s.activity_until = now + cfg_.sit_dwell_s * dwell(rng_);
            break;
        case Activity::kStanding:
            s.activity_until = now + cfg_.stand_dwell_s * dwell(rng_);
            break;
        case Activity::kWalking:
            s.target = random_waypoint(rng_);
            s.activity_until = now + cfg_.walk_dwell_s * (0.5 + dwell(rng_));
            break;
    }
}

void OccupantModel::step(double timestamp, double dt) {
    now_ = timestamp;
    // Both distributions draw exclusively from the model's own substream
    // engine rng_ (seeded in the ctor), so every sequence they produce is
    // fixed by the scenario seed.
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the seeded substream engine: deterministic under the fixed-seed contract
    std::normal_distribution<double> norm(0.0, 1.0);

    for (std::size_t i = 0; i < subjects_.size(); ++i) {
        SubjectState& s = subjects_[i];
        const bool inside = subject_inside(i, timestamp);
        if (!inside) {
            s.inside = false;
            continue;
        }
        if (!s.inside) {
            // Just entered: appear near the door (x = lx end, deep wall) and
            // walk to the desk.
            s.inside = true;
            s.position = {room_.lx - 0.6, room_.ly - 0.6, 1.1};
            enter_activity(s, Activity::kWalking, timestamp);
            s.target = s.desk;
        }

        if (timestamp >= s.activity_until) {
            // Transition: sitting-heavy mix of office behaviour.
            const double u = uni(rng_);
            if (s.activity == Activity::kWalking) {
                enter_activity(s, u < 0.8 ? Activity::kSitting : Activity::kStanding,
                               timestamp);
            } else {
                enter_activity(s,
                               u < 0.55 ? Activity::kSitting
                               : u < 0.75 ? Activity::kStanding
                                          : Activity::kWalking,
                               timestamp);
            }
        }

        switch (s.activity) {
            case Activity::kWalking: {
                const csi::Vec3 delta = s.target - s.position;
                const double dist = delta.norm();
                const double step_len = cfg_.walk_speed_mps * dt;
                if (dist <= step_len || dist < 1e-9) {
                    s.position = s.target;
                    enter_activity(s, Activity::kSitting, timestamp);
                } else {
                    s.position = s.position + delta * (step_len / dist);
                }
                break;
            }
            case Activity::kSitting:
            case Activity::kStanding: {
                const double amp = cfg_.micro_motion_m *
                                   (s.activity == Activity::kStanding ? 2.0 : 1.0);
                s.position.x += amp * norm(rng_);
                s.position.y += amp * norm(rng_);
                s.position.x = std::clamp(s.position.x, 0.4, room_.lx - 0.4);
                s.position.y =
                    std::clamp(s.position.y, cfg_.keepout_y + 0.2, room_.ly - 0.3);
                break;
            }
        }
    }
}

bool OccupantModel::any_walking() const {
    for (std::size_t i = 0; i < subjects_.size(); ++i) {
        if (!subjects_[i].inside) continue;
        if (!subject_inside(i, now_)) continue;
        if (subjects_[i].activity == Activity::kWalking) return true;
    }
    return false;
}

std::vector<csi::BodyState> OccupantModel::bodies() const {
    std::vector<csi::BodyState> out;
    for (std::size_t i = 0; i < subjects_.size(); ++i) {
        if (!subjects_[i].inside) continue;
        if (!subject_inside(i, now_)) continue;
        out.push_back(csi::BodyState{subjects_[i].position, cfg_.body_reflectivity});
    }
    return out;
}

}  // namespace wifisense::envsim
