#include "common/cpuid.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define WIFISENSE_CPUID_X86 1
#include <cpuid.h>
#else
#define WIFISENSE_CPUID_X86 0
#endif

namespace wifisense::common {

namespace {

CpuFeatures detect() {
    CpuFeatures f;
#if WIFISENSE_CPUID_X86
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
        f.sse42 = (ecx & bit_SSE4_2) != 0;
        f.avx = (ecx & bit_AVX) != 0;
        f.fma = (ecx & bit_FMA) != 0;
    }
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        f.avx2 = (ebx & bit_AVX2) != 0;
#endif
    return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
    static const CpuFeatures f = detect();
    return f;
}

std::string cpu_feature_string() {
    const CpuFeatures& f = cpu_features();
    std::string s;
    const auto append = [&s](const char* name) {
        if (!s.empty()) s += ' ';
        s += name;
    };
    if (f.sse42) append("sse4.2");
    if (f.avx) append("avx");
    if (f.avx2) append("avx2");
    if (f.fma) append("fma");
    if (s.empty()) s = "baseline";
    return s;
}

}  // namespace wifisense::common
