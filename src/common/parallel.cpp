#include "common/parallel.hpp"

#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wifisense::common {

namespace {

/// >0 while the current thread is executing tasks of a parallel region.
thread_local int tl_region_depth = 0;

/// One parallel region: a batch of `n` tasks drained via an atomic cursor.
/// The task is a raw function pointer + opaque context (not std::function),
/// so posting a region never touches the heap.
struct Job {
    void (*task)(const void*, std::size_t) = nullptr;
    const void* ctx = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;    // completed tasks; guarded by the pool mutex
    std::size_t active = 0;  // workers inside drain(); guarded by the pool mutex
    std::exception_ptr error;
    std::mutex error_mu;
};

class ThreadPool {
public:
    static ThreadPool& instance() {
        static ThreadPool pool;
        return pool;
    }

    ~ThreadPool() { stop_workers(); }

    void configure(ExecutionConfig cfg) {
        std::lock_guard region(region_mu_);
        cfg_ = cfg;
        const std::size_t want = resolve_threads(cfg_) - 1;
        if (want != workers_.size()) {
            stop_workers();
            spawn_workers(want);
        }
    }

    ExecutionConfig config() {
        std::lock_guard region(region_mu_);
        return cfg_;
    }

    std::size_t threads() {
        std::lock_guard region(region_mu_);
        return workers_.size() + 1;
    }

    // Posting and draining a parallel region is on the steady-state path of
    // training, inference, and the fleet simulator: it must stay heap-free
    // at any thread count.
    // wifisense-lint: noalloc-begin

    /// Run task(ctx, 0..n-1) to completion, caller participating.
    // wifisense-lint: allow-call(rethrow_exception) rethrows the region body's own exception; bodies proven noexcept by their contracts never store one
    void run_region(std::size_t n, void (*task)(const void*, std::size_t),
                    const void* ctx) {
        if (n == 0) return;
        if (tl_region_depth > 0) {  // nested region: inline, no fan-out
            run_inline(n, task, ctx);
            return;
        }
        std::lock_guard region(region_mu_);
        if (workers_.empty() || n == 1) {
            run_inline(n, task, ctx);
            return;
        }
        Job job;
        job.task = task;
        job.ctx = ctx;
        job.n = n;
        {
            std::lock_guard lk(mu_);
            job_ = &job;
        }
        cv_work_.notify_all();
        const std::size_t mine = drain(job);
        {
            std::unique_lock lk(mu_);
            job.done += mine;
            // Wait for all tasks AND for every registered worker to leave
            // drain() — a worker may still hold a pointer to `job` even after
            // the last task completed.
            cv_done_.wait(lk, [&] { return job.done == job.n && job.active == 0; });
            job_ = nullptr;
        }
        if (job.error) std::rethrow_exception(job.error);
    }
    // wifisense-lint: noalloc-end

private:
    ThreadPool() {
        std::size_t threads = resolve_threads({});
        if (const char* env = std::getenv("WIFISENSE_THREADS")) {
            const long v = std::atol(env);
            if (v > 0) threads = static_cast<std::size_t>(v);
        }
        cfg_.threads = threads;
        spawn_workers(threads - 1);
    }

    // wifisense-lint: allow-call(task) type-erased trampoline: the pointed-to chunk lambda is scanned in place at the enclosing parallel_for_chunks call site
    static void run_inline(std::size_t n, void (*task)(const void*, std::size_t),
                           const void* ctx) {
        ++tl_region_depth;
        try {
            for (std::size_t i = 0; i < n; ++i) task(ctx, i);
        } catch (...) {
            --tl_region_depth;
            // wifisense-lint: allow(ipa.throw-leak) rethrows the region
            // body's own exception; proven-noexcept bodies never throw here
            throw;
        }
        --tl_region_depth;
    }

    /// Pull tasks until the cursor runs out; returns how many this thread ran.
    // wifisense-lint: allow-call(task) type-erased trampoline: the pointed-to chunk lambda is scanned in place at the enclosing parallel_for_chunks call site
    static std::size_t drain(Job& job) {
        ++tl_region_depth;
        std::size_t mine = 0;
        for (;;) {
            const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= job.n) break;
            try {
                job.task(job.ctx, i);
            } catch (...) {
                std::lock_guard lk(job.error_mu);
                if (!job.error) job.error = std::current_exception();
            }
            ++mine;
        }
        --tl_region_depth;
        return mine;
    }

    void worker_loop() {
        for (;;) {
            Job* job = nullptr;
            {
                std::unique_lock lk(mu_);
                cv_work_.wait(lk, [&] {
                    return stop_ ||
                           (job_ != nullptr &&
                            job_->next.load(std::memory_order_relaxed) < job_->n);
                });
                if (stop_) return;
                job = job_;
                ++job->active;
            }
            const std::size_t mine = drain(*job);
            {
                std::lock_guard lk(mu_);
                job->done += mine;
                --job->active;
                if (job->done == job->n && job->active == 0) cv_done_.notify_all();
            }
        }
    }

    void spawn_workers(std::size_t count) {
        stop_ = false;
        workers_.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    void stop_workers() {
        {
            std::lock_guard lk(mu_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (std::thread& t : workers_)
            if (t.joinable()) t.join();
        workers_.clear();
    }

    std::mutex region_mu_;  ///< serializes top-level regions and reconfiguration
    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    Job* job_ = nullptr;  // guarded by mu_
    bool stop_ = false;   // guarded by mu_
    std::vector<std::thread> workers_;
    ExecutionConfig cfg_;  // guarded by region_mu_
};

}  // namespace

std::size_t resolve_threads(const ExecutionConfig& cfg) {
    if (cfg.threads > 0) return cfg.threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void set_execution_config(const ExecutionConfig& cfg) {
    ThreadPool::instance().configure(cfg);
}

ExecutionConfig execution_config() { return ThreadPool::instance().config(); }

std::size_t thread_count() { return ThreadPool::instance().threads(); }

std::size_t configure_threads_from_env() {
    if (const char* env = std::getenv("WIFISENSE_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) set_execution_config({.threads = static_cast<std::size_t>(v)});
    }
    return thread_count();
}

bool in_parallel_region() { return tl_region_depth > 0; }

namespace detail {

bool region_runs_inline(std::size_t tasks) {
    return tasks <= 1 || tl_region_depth > 0 || ThreadPool::instance().threads() == 1;
}

InlineRegion::InlineRegion() { ++tl_region_depth; }
InlineRegion::~InlineRegion() { --tl_region_depth; }

// The type-erased fan-out: stack context + captureless trampolines only,
// zero heap allocations per region.
// wifisense-lint: noalloc-begin

/// Per-region chunk description, passed by address through the pool.
struct ChunkCtx {
    std::size_t n;
    std::size_t chunk_size;
    void (*body)(const void*, std::size_t, std::size_t);
    const void* body_ctx;
};

// wifisense-lint: allow-call(body) type-erased trampoline: the pointed-to chunk lambda is scanned in place at the enclosing parallel_for_chunks call site
// wifisense-lint: allow-call(TraceScope) env-gated observability: the span ring is preallocated at trace start; a disabled tracer records nothing
void run_chunks_erased(std::size_t n, std::size_t chunk_size,
                       void (*body)(const void* ctx, std::size_t begin,
                                    std::size_t end),
                       const void* ctx) {
    const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
    const ChunkCtx chunk_ctx{n, chunk_size, body, ctx};
    ThreadPool::instance().run_region(
        chunks,
        +[](const void* p, std::size_t c) {
            // Each fanned-out chunk records one span on the worker that ran
            // it, so spans emitted inside `body` nest under their chunk in
            // the trace viewer (the inline path needs no marker: it already
            // runs nested under the caller's spans on the caller's thread).
            TraceScope span("pool.chunk");
            const auto& cc = *static_cast<const ChunkCtx*>(p);
            const std::size_t begin = c * cc.chunk_size;
            cc.body(cc.body_ctx, begin, std::min(cc.n, begin + cc.chunk_size));
        },
        &chunk_ctx);
}
// wifisense-lint: noalloc-end

}  // namespace detail

void parallel_invoke(std::span<const std::function<void()>> tasks) {
    ThreadPool::instance().run_region(
        tasks.size(),
        +[](const void* ctx, std::size_t i) {
            TraceScope span("pool.task");
            (*static_cast<const std::span<const std::function<void()>>*>(ctx))[i]();
        },
        &tasks);
}

}  // namespace wifisense::common
