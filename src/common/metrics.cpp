#include "common/metrics.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "common/telemetry/quantile_sketch.hpp"
#include "common/telemetry/sliding_window.hpp"

namespace wifisense::common {

#if WIFISENSE_TRACE_COMPILED
namespace obsdetail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace obsdetail
#endif

namespace {

/// The process-wide instrument registry. std::map keeps export order
/// deterministic (sorted by name); unique_ptr keeps handles stable across
/// later registrations.
struct Registry {
    std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
    // Serving-grade telemetry instruments (common/telemetry/), registered
    // alongside the PR-5 trio so one registry owns every handle's lifetime
    // and one reset touches everything.
    std::map<std::string, std::unique_ptr<QuantileSketch>, std::less<>> sketches;
    std::map<std::string, std::unique_ptr<WindowedCounter>, std::less<>>
        windowed_counters;
    std::map<std::string, std::unique_ptr<WindowedQuantile>, std::less<>>
        windowed_quantiles;
};

Registry& registry() {
    static Registry r;
    return r;
}

void append_double(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

Histogram::Histogram(std::string name, std::span<const double> edges)
    : name_(std::move(name)),
      edges_(edges.begin(), edges.end()),
      counts_(edges.size() + 1) {}

std::uint64_t Histogram::total_count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
}

void Histogram::reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
    underflow_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
}

void metrics_enable() {
#if WIFISENSE_TRACE_COMPILED
    obsdetail::g_metrics_enabled.store(true, std::memory_order_release);
#endif
}

void metrics_disable() {
#if WIFISENSE_TRACE_COMPILED
    obsdetail::g_metrics_enabled.store(false, std::memory_order_relaxed);
#endif
}

void metrics_reset() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    for (auto& [name, c] : r.counters) c->reset();
    for (auto& [name, g] : r.gauges) g->reset();
    for (auto& [name, h] : r.histograms) h->reset();
    for (auto& [name, s] : r.sketches) s->reset();
    for (auto& [name, w] : r.windowed_counters) w->reset();
    for (auto& [name, w] : r.windowed_quantiles) w->reset();
}

Counter& obs_counter(std::string_view name) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.counters.find(name);
    if (it == r.counters.end())
        it = r.counters
                 .emplace(std::string(name),
                          std::make_unique<Counter>(std::string(name)))
                 .first;
    return *it->second;
}

Gauge& obs_gauge(std::string_view name) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.gauges.find(name);
    if (it == r.gauges.end())
        it = r.gauges
                 .emplace(std::string(name),
                          std::make_unique<Gauge>(std::string(name)))
                 .first;
    return *it->second;
}

Histogram& obs_histogram(std::string_view name, std::span<const double> edges) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.histograms.find(name);
    if (it == r.histograms.end())
        it = r.histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(std::string(name), edges))
                 .first;
    return *it->second;
}

QuantileSketch& obs_sketch(std::string_view name) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.sketches.find(name);
    if (it == r.sketches.end())
        it = r.sketches
                 .emplace(std::string(name),
                          std::make_unique<QuantileSketch>(std::string(name)))
                 .first;
    return *it->second;
}

WindowedCounter& obs_windowed_counter(std::string_view name,
                                      const WindowConfig& cfg) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.windowed_counters.find(name);
    if (it == r.windowed_counters.end())
        it = r.windowed_counters
                 .emplace(std::string(name), std::make_unique<WindowedCounter>(
                                                 std::string(name), cfg))
                 .first;
    return *it->second;
}

WindowedQuantile& obs_windowed_quantile(std::string_view name,
                                        const WindowConfig& cfg) {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.windowed_quantiles.find(name);
    if (it == r.windowed_quantiles.end())
        it = r.windowed_quantiles
                 .emplace(std::string(name), std::make_unique<WindowedQuantile>(
                                                 std::string(name), cfg))
                 .first;
    return *it->second;
}

std::string sketches_to_json() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    std::string out = "{";
    bool first = true;
    for (const auto& [name, s] : r.sketches) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":{\"count\":";
        out += std::to_string(s->count());
        out += ",\"min\":";
        append_double(out, s->min());
        out += ",\"max\":";
        append_double(out, s->max());
        out += ",\"sum\":";
        append_double(out, s->sum());
        static constexpr const char* kQuantileKeys[] = {"p50", "p90", "p99",
                                                        "p999"};
        for (std::size_t i = 0; i < kSketchQuantileCount; ++i) {
            out += ",\"";
            out += kQuantileKeys[i];
            out += "\":";
            append_double(out, s->estimate(i));
        }
        out += '}';
    }
    out += "}";
    return out;
}

std::string windows_to_json() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, w] : r.windowed_counters) {
        if (!first) out += ',';
        first = false;
        const double span =
            static_cast<double>(w->config().epochs) * w->config().epoch_seconds;
        out += '"';
        out += name;
        out += "\":{\"window_s\":";
        append_double(out, span);
        out += ",\"total\":";
        out += std::to_string(w->total());
        out += ",\"rate_per_s\":";
        append_double(out, w->rate_per_s(span));
        out += ",\"late_dropped\":";
        out += std::to_string(w->late_dropped());
        out += '}';
    }
    out += "},\"quantiles\":{";
    first = true;
    for (const auto& [name, w] : r.windowed_quantiles) {
        if (!first) out += ',';
        first = false;
        const double span =
            static_cast<double>(w->config().epochs) * w->config().epoch_seconds;
        out += '"';
        out += name;
        out += "\":{\"window_s\":";
        append_double(out, span);
        out += ",\"count\":";
        out += std::to_string(w->count_last(span));
        out += ",\"late_dropped\":";
        out += std::to_string(w->late_dropped());
        static constexpr const char* kQuantileKeys[] = {"p50", "p90", "p99",
                                                        "p999"};
        for (std::size_t i = 0; i < kSketchQuantileCount; ++i) {
            out += ",\"";
            out += kQuantileKeys[i];
            out += "\":";
            append_double(out, w->quantile_last(span, kSketchQuantiles[i]));
        }
        out += '}';
    }
    out += "}}";
    return out;
}

std::string metrics_to_json() {
    Registry& r = registry();
    std::lock_guard lock(r.mu);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : r.counters) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        out += std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : r.gauges) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":";
        append_double(out, g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : r.histograms) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += name;
        out += "\":{\"edges\":[";
        for (std::size_t i = 0; i < h->edges().size(); ++i) {
            if (i > 0) out += ',';
            append_double(out, h->edges()[i]);
        }
        out += "],\"counts\":[";
        for (std::size_t i = 0; i <= h->edges().size(); ++i) {
            if (i > 0) out += ',';
            out += std::to_string(h->bucket_count(i));
        }
        out += "],\"count\":";
        out += std::to_string(h->total_count());
        out += ",\"sum\":";
        append_double(out, h->sum());
        out += ",\"underflow\":";
        out += std::to_string(h->underflow_count());
        out += ",\"overflow\":";
        out += std::to_string(h->overflow_count());
        out += '}';
    }
    out += "}}";
    return out;
}

[[nodiscard]] Status write_metrics_json(const std::string& path) {
    const std::string json = metrics_to_json() + "\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError,
                      "write_metrics_json: cannot open " + path);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size())
        return Status(StatusCode::kIoError,
                      "write_metrics_json: short write to " + path);
    return Status::ok();
}

}  // namespace wifisense::common
