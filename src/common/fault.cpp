#include "common/fault.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>

#include "common/metrics.hpp"

namespace wifisense::common {

namespace {

// Salts separating the independent fault decision streams of one seed.
constexpr std::uint64_t kSaltPacket = 0x70616b74;    // "pakt"
constexpr std::uint64_t kSaltCorrupt = 0x636f7272;   // "corr"
constexpr std::uint64_t kSaltDropout = 0x64726f70;   // "drop"
constexpr std::uint64_t kSaltBurst = 0x62757273;     // "burs"
constexpr std::uint64_t kSaltEnvStall = 0x7374616c;  // "stal"
constexpr std::uint64_t kSaltWire = 0x77697265;      // "wire"
constexpr std::uint64_t kSaltLinkOut = 0x6c6f7574;   // "lout"
constexpr std::uint64_t kSaltLinkSkew = 0x6c736b77;  // "lskw"
constexpr std::uint64_t kSaltPhase = 0x70687365;     // "phse"

/// Folds a link id into a salt so every link owns independent decision
/// streams under one plan seed.
constexpr std::uint64_t link_salt(std::uint64_t salt, std::uint8_t link_id) {
    return salt ^ splitmix64(0x6c696e6bull + link_id);  // "link" + id
}

/// Fixed window for the time-windowed fault processes. At most one event
/// starts per window, so rates up to 6/h stay faithful; durations are
/// clamped to the window so a lookback of one window suffices.
constexpr double kFaultWindowS = 600.0;

/// Uniform double in [0, 1) from a mixed 64-bit value.
double uniform01(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Advance a splitmix64 decision chain: returns the next mixed value.
std::uint64_t next(std::uint64_t& h) {
    h = splitmix64(h);
    return h;
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Metric-side accounting of one packet decision. packet_fault() is pure and
/// called concurrently; counters are atomic, so the query stays thread-safe.
void note_packet_fault(const PacketFault& fault) {
    static Counter& dropped = obs_counter("fault.frames_dropped");
    static Counter& corrupted = obs_counter("fault.frames_corrupted");
    static Counter& dropouts = obs_counter("fault.subcarrier_dropouts");
    if (fault.dropped) dropped.add(1);
    if (fault.corrupt != CorruptKind::kNone) corrupted.add(1);
    if (fault.dropout_mask_seed != 0) dropouts.add(1);
}

}  // namespace

bool FaultConfig::any_active() const {
    return frame_drop_rate > 0.0 || nan_rate > 0.0 || inf_rate > 0.0 ||
           saturate_rate > 0.0 || subcarrier_dropout_rate > 0.0 ||
           (burst_rate_per_h > 0.0 && burst_len_s > 0.0) ||
           (env_stall_rate_per_h > 0.0 && env_stall_len_s > 0.0) ||
           env_clock_skew_s > 0.0 || wire_corrupt_rate > 0.0 ||
           wire_truncate_rate > 0.0 || wire_reorder_rate > 0.0 ||
           wire_duplicate_rate > 0.0 ||
           (link_outage_rate_per_h > 0.0 && link_outage_len_s > 0.0) ||
           link_clock_skew_s > 0.0 || phase_jump_rate > 0.0 ||
           phase_noise_rate > 0.0;
}

FaultConfig FaultConfig::scaled(double factor) const {
    FaultConfig out = *this;
    out.frame_drop_rate = clamp01(frame_drop_rate * factor);
    out.nan_rate = clamp01(nan_rate * factor);
    out.inf_rate = clamp01(inf_rate * factor);
    out.saturate_rate = clamp01(saturate_rate * factor);
    out.subcarrier_dropout_rate = clamp01(subcarrier_dropout_rate * factor);
    out.burst_rate_per_h = std::max(0.0, burst_rate_per_h * factor);
    out.env_stall_rate_per_h = std::max(0.0, env_stall_rate_per_h * factor);
    out.env_clock_skew_s = factor > 0.0 ? env_clock_skew_s : 0.0;
    out.wire_corrupt_rate = clamp01(wire_corrupt_rate * factor);
    out.wire_truncate_rate = clamp01(wire_truncate_rate * factor);
    out.wire_reorder_rate = clamp01(wire_reorder_rate * factor);
    out.wire_duplicate_rate = clamp01(wire_duplicate_rate * factor);
    out.link_outage_rate_per_h = std::max(0.0, link_outage_rate_per_h * factor);
    out.link_clock_skew_s = factor > 0.0 ? link_clock_skew_s : 0.0;
    out.phase_jump_rate = clamp01(phase_jump_rate * factor);
    out.phase_noise_rate = clamp01(phase_noise_rate * factor);
    return out;
}

FaultPlan::FaultPlan(FaultConfig cfg) : cfg_(cfg), active_(cfg.any_active()) {
    const auto check01 = [](double v) { return v >= 0.0 && v <= 1.0; };
    if (!check01(cfg_.frame_drop_rate) || !check01(cfg_.nan_rate) ||
        !check01(cfg_.inf_rate) || !check01(cfg_.saturate_rate) ||
        !check01(cfg_.subcarrier_dropout_rate) ||
        !check01(cfg_.subcarrier_dropout_fraction) ||
        !check01(cfg_.wire_corrupt_rate) || !check01(cfg_.wire_truncate_rate) ||
        !check01(cfg_.wire_reorder_rate) || !check01(cfg_.wire_duplicate_rate) ||
        !check01(cfg_.phase_jump_rate) || !check01(cfg_.phase_noise_rate))
        throw std::invalid_argument("FaultPlan: probability outside [0, 1]");
    if (cfg_.nan_rate + cfg_.inf_rate + cfg_.saturate_rate > 1.0)
        throw std::invalid_argument("FaultPlan: corruption rates sum above 1");
    if (cfg_.burst_rate_per_h < 0.0 || cfg_.burst_len_s < 0.0 ||
        cfg_.env_stall_rate_per_h < 0.0 || cfg_.env_stall_len_s < 0.0 ||
        cfg_.env_clock_skew_s < 0.0 || cfg_.link_outage_rate_per_h < 0.0 ||
        cfg_.link_outage_len_s < 0.0 || cfg_.link_clock_skew_s < 0.0 ||
        cfg_.phase_jump_max_rad < 0.0 || cfg_.phase_noise_sigma_rad < 0.0)
        throw std::invalid_argument("FaultPlan: negative rate/duration");
}

PacketFault FaultPlan::packet_fault(std::uint64_t packet_index) const {
    PacketFault fault;
    if (!active_) return fault;

    // One decision chain per packet, rooted at (seed, packet_index): the
    // same packet always sees the same faults, and packets are independent.
    std::uint64_t h = substream_seed(cfg_.seed ^ kSaltPacket, packet_index);

    if (uniform01(next(h)) < cfg_.frame_drop_rate) {
        fault.dropped = true;
        if (metrics_enabled()) note_packet_fault(fault);
        return fault;  // a dropped frame has no payload to corrupt
    }

    const double u = uniform01(next(h));
    if (u < cfg_.nan_rate)
        fault.corrupt = CorruptKind::kNaN;
    else if (u < cfg_.nan_rate + cfg_.inf_rate)
        fault.corrupt = CorruptKind::kInf;
    else if (u < cfg_.nan_rate + cfg_.inf_rate + cfg_.saturate_rate)
        fault.corrupt = CorruptKind::kSaturate;
    if (fault.corrupt == CorruptKind::kNaN || fault.corrupt == CorruptKind::kInf)
        fault.corrupt_mask_seed =
            substream_seed(cfg_.seed ^ kSaltCorrupt, packet_index) | 1u;

    if (uniform01(next(h)) < cfg_.subcarrier_dropout_rate)
        fault.dropout_mask_seed =
            substream_seed(cfg_.seed ^ kSaltDropout, packet_index) | 1u;
    if (metrics_enabled() && fault.any()) note_packet_fault(fault);
    return fault;
}

bool FaultPlan::window_fault_active(double t, std::uint64_t salt,
                                    double rate_per_h, double len_s) const {
    if (rate_per_h <= 0.0 || len_s <= 0.0) return false;
    const double len = std::min(len_s, kFaultWindowS);
    const double p_window = std::min(1.0, rate_per_h * kFaultWindowS / 3600.0);
    const auto window = static_cast<std::int64_t>(std::floor(t / kFaultWindowS));
    // An event starting late in window w-1 can still cover t.
    for (std::int64_t w = window - 1; w <= window; ++w) {
        if (w < 0) continue;
        std::uint64_t h =
            substream_seed(cfg_.seed ^ salt, static_cast<std::uint64_t>(w));
        if (uniform01(next(h)) >= p_window) continue;
        const double start = static_cast<double>(w) * kFaultWindowS +
                             uniform01(next(h)) * kFaultWindowS;
        if (t >= start && t < start + len) return true;
    }
    return false;
}

bool FaultPlan::csi_offline(double t) const {
    return active_ &&
           window_fault_active(t, kSaltBurst, cfg_.burst_rate_per_h,
                               cfg_.burst_len_s);
}

bool FaultPlan::env_stalled(double t) const {
    return active_ &&
           window_fault_active(t, kSaltEnvStall, cfg_.env_stall_rate_per_h,
                               cfg_.env_stall_len_s);
}

WireFault FaultPlan::wire_fault(std::uint8_t link_id,
                                std::uint64_t sequence) const {
    WireFault fault;
    if (!active_) return fault;
    std::uint64_t h = substream_seed(cfg_.seed ^ link_salt(kSaltWire, link_id),
                                     sequence);
    // Corruption and truncation are mutually exclusive (a torn frame is one
    // or the other); duplication and reordering can ride on anything.
    const double u = uniform01(next(h));
    if (u < cfg_.wire_corrupt_rate)
        fault.corrupt = true;
    else if (u < cfg_.wire_corrupt_rate + cfg_.wire_truncate_rate)
        fault.truncate = true;
    if (fault.corrupt || fault.truncate) fault.byte_seed = next(h) | 1u;
    if (uniform01(next(h)) < cfg_.wire_duplicate_rate) fault.duplicate = true;
    if (uniform01(next(h)) < cfg_.wire_reorder_rate) fault.reorder = true;
    if (metrics_enabled() && fault.any()) {
        static Counter& wire_faults = obs_counter("fault.wire_frames_faulted");
        wire_faults.add(1);
    }
    return fault;
}

bool FaultPlan::link_offline(std::uint8_t link_id, double t) const {
    return active_ &&
           window_fault_active(t, link_salt(kSaltLinkOut, link_id),
                               cfg_.link_outage_rate_per_h,
                               cfg_.link_outage_len_s);
}

double FaultPlan::link_skew_s(std::uint8_t link_id) const {
    if (!active_ || cfg_.link_clock_skew_s <= 0.0 || link_id == 0) return 0.0;
    std::uint64_t h = substream_seed(cfg_.seed ^ kSaltLinkSkew, link_id);
    return uniform01(next(h)) * cfg_.link_clock_skew_s;
}

PhaseFault FaultPlan::phase_fault(std::uint64_t packet_index,
                                  std::uint8_t link_id) const {
    PhaseFault fault;
    if (!active_ || (cfg_.phase_jump_rate <= 0.0 && cfg_.phase_noise_rate <= 0.0))
        return fault;
    std::uint64_t h = substream_seed(cfg_.seed ^ link_salt(kSaltPhase, link_id),
                                     packet_index);
    if (uniform01(next(h)) < cfg_.phase_jump_rate)
        fault.jump_rad = (2.0 * uniform01(next(h)) - 1.0) * cfg_.phase_jump_max_rad;
    else
        (void)next(h);  // keep the chain length fault-independent
    if (uniform01(next(h)) < cfg_.phase_noise_rate) {
        fault.noise_seed = next(h) | 1u;
        fault.noise_sigma_rad = cfg_.phase_noise_sigma_rad;
    }
    if (metrics_enabled() && fault.any()) {
        static Counter& phase_faults = obs_counter("fault.phase_faults");
        phase_faults.add(1);
    }
    return fault;
}

void apply_packet_fault(std::span<float> amps, const PacketFault& fault,
                        double full_scale, double dropout_fraction) {
    if (amps.empty()) return;
    switch (fault.corrupt) {
        case CorruptKind::kNone:
            break;
        case CorruptKind::kSaturate:
            // AGC saturation pins the whole frame at full scale.
            for (float& a : amps) a = static_cast<float>(full_scale);
            break;
        case CorruptKind::kNaN:
        case CorruptKind::kInf: {
            // Partial corruption: a deterministic ~25% subset of subcarriers
            // (at least one) reads non-finite, like a torn DMA transfer.
            const float bad = fault.corrupt == CorruptKind::kNaN
                                  ? std::numeric_limits<float>::quiet_NaN()
                                  : std::numeric_limits<float>::infinity();
            std::uint64_t h = fault.corrupt_mask_seed;
            bool any = false;
            for (std::size_t k = 0; k < amps.size(); ++k) {
                if (next(h) % 4 == 0) {
                    amps[k] = bad;
                    any = true;
                }
            }
            if (!any) amps[0] = bad;
            break;
        }
    }
    if (fault.dropout_mask_seed != 0) {
        // Lost subcarriers report NaN (no measurement), never zeros: zeros
        // are a valid amplitude and would silently skew training.
        std::uint64_t h = fault.dropout_mask_seed;
        const std::size_t n = amps.size();
        auto lost = static_cast<std::size_t>(
            std::ceil(std::clamp(dropout_fraction, 0.0, 1.0) *
                      static_cast<double>(n)));
        lost = std::max<std::size_t>(1, std::min(lost, n));
        for (std::size_t i = 0; i < lost; ++i)
            amps[next(h) % n] = std::numeric_limits<float>::quiet_NaN();
    }
}

void apply_phase_fault(std::span<std::complex<double>> cfr,
                       const PhaseFault& fault) {
    if (!fault.any() || cfr.empty()) return;
    if (fault.noise_seed != 0 && fault.noise_sigma_rad > 0.0) {
        // Per-subcarrier Gaussian phase noise via Box-Muller over the fault's
        // own splitmix64 chain — pure in (seed, k), thread-safe by value.
        std::uint64_t h = fault.noise_seed;
        for (std::size_t k = 0; k < cfr.size(); ++k) {
            const double u1 = std::max(uniform01(next(h)), 1e-300);
            const double u2 = uniform01(next(h));
            const double g = std::sqrt(-2.0 * std::log(u1)) *
                             std::cos(2.0 * 3.14159265358979323846 * u2);
            cfr[k] *= std::polar(1.0, fault.jump_rad + fault.noise_sigma_rad * g);
        }
        return;
    }
    const std::complex<double> rot = std::polar(1.0, fault.jump_rad);
    for (std::complex<double>& v : cfr) v *= rot;
}

[[nodiscard]] Result<FaultConfig> parse_fault_spec(std::string_view spec) {
    FaultConfig cfg;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string_view item =
            comma == std::string_view::npos ? rest : rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (item.empty()) continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos)
            return Status(StatusCode::kInvalidArgument,
                          "parse_fault_spec: expected key=value, got '" +
                              std::string(item) + "'");
        const std::string_view key = item.substr(0, eq);
        const std::string_view val = item.substr(eq + 1);
        double v = 0.0;
        const auto [p, ec] = std::from_chars(val.data(), val.data() + val.size(), v);
        if (ec != std::errc{} || p != val.data() + val.size() || !std::isfinite(v))
            return Status(StatusCode::kInvalidArgument,
                          "parse_fault_spec: bad value for '" + std::string(key) +
                              "': '" + std::string(val) + "'");
        if (key == "drop") cfg.frame_drop_rate = v;
        else if (key == "nan") cfg.nan_rate = v;
        else if (key == "inf") cfg.inf_rate = v;
        else if (key == "saturate") cfg.saturate_rate = v;
        else if (key == "dropout") cfg.subcarrier_dropout_rate = v;
        else if (key == "dropout_fraction") cfg.subcarrier_dropout_fraction = v;
        else if (key == "burst_rate") cfg.burst_rate_per_h = v;
        else if (key == "burst_len") cfg.burst_len_s = v;
        else if (key == "env_stall_rate") cfg.env_stall_rate_per_h = v;
        else if (key == "env_stall_len") cfg.env_stall_len_s = v;
        else if (key == "skew") cfg.env_clock_skew_s = v;
        else if (key == "wire_corrupt") cfg.wire_corrupt_rate = v;
        else if (key == "wire_truncate") cfg.wire_truncate_rate = v;
        else if (key == "wire_reorder") cfg.wire_reorder_rate = v;
        else if (key == "wire_duplicate") cfg.wire_duplicate_rate = v;
        else if (key == "link_outage_rate") cfg.link_outage_rate_per_h = v;
        else if (key == "link_outage_len") cfg.link_outage_len_s = v;
        else if (key == "link_skew") cfg.link_clock_skew_s = v;
        else if (key == "phase_jump") cfg.phase_jump_rate = v;
        else if (key == "phase_jump_max") cfg.phase_jump_max_rad = v;
        else if (key == "phase_noise") cfg.phase_noise_rate = v;
        else if (key == "phase_noise_sigma") cfg.phase_noise_sigma_rad = v;
        else if (key == "seed") cfg.seed = static_cast<std::uint64_t>(v);
        else
            return Status(StatusCode::kInvalidArgument,
                          "parse_fault_spec: unknown key '" + std::string(key) +
                              "'");
    }
    try {
        FaultPlan validate{cfg};
        (void)validate;
    } catch (const std::invalid_argument& e) {
        return Status(StatusCode::kInvalidArgument,
                      std::string("parse_fault_spec: ") + e.what());
    }
    return cfg;
}

std::string to_spec(const FaultConfig& cfg) {
    std::ostringstream os;
    os << "drop=" << cfg.frame_drop_rate << ",nan=" << cfg.nan_rate
       << ",inf=" << cfg.inf_rate << ",saturate=" << cfg.saturate_rate
       << ",dropout=" << cfg.subcarrier_dropout_rate
       << ",burst_rate=" << cfg.burst_rate_per_h
       << ",burst_len=" << cfg.burst_len_s
       << ",env_stall_rate=" << cfg.env_stall_rate_per_h
       << ",env_stall_len=" << cfg.env_stall_len_s
       << ",skew=" << cfg.env_clock_skew_s
       << ",wire_corrupt=" << cfg.wire_corrupt_rate
       << ",wire_truncate=" << cfg.wire_truncate_rate
       << ",wire_reorder=" << cfg.wire_reorder_rate
       << ",wire_duplicate=" << cfg.wire_duplicate_rate
       << ",link_outage_rate=" << cfg.link_outage_rate_per_h
       << ",link_outage_len=" << cfg.link_outage_len_s
       << ",link_skew=" << cfg.link_clock_skew_s
       << ",phase_jump=" << cfg.phase_jump_rate
       << ",phase_jump_max=" << cfg.phase_jump_max_rad
       << ",phase_noise=" << cfg.phase_noise_rate
       << ",phase_noise_sigma=" << cfg.phase_noise_sigma_rad
       << ",seed=" << cfg.seed;
    return os.str();
}

}  // namespace wifisense::common
