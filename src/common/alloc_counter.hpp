// Process-wide heap allocation counter for tests and benchmarks.
//
// Linking the `wifisense_alloc_counter` library replaces the global
// operator new/delete family with counting versions (malloc-backed, same
// semantics). Referencing allocation_count() from a translation unit pulls
// the replacement operators in with it, so any target that calls it gets
// counted allocations for the whole process.
//
// Only tests and bench_footprint link this library — production binaries use
// the default allocator untouched.
#pragma once

#include <cstdint>

namespace wifisense::alloc {

/// Number of successful global operator new calls since process start
/// (all variants: array, nothrow, aligned). Monotonic; never reset.
std::uint64_t allocation_count();

/// Number of global operator delete calls on non-null pointers.
std::uint64_t deallocation_count();

/// Allocations performed while an AllocationProbe window was open minus
/// the probe's own bookkeeping — see AllocationProbe.
class AllocationProbe {
public:
    AllocationProbe() : start_(allocation_count()) {}
    /// Allocations since construction (or the last reset()).
    std::uint64_t delta() const { return allocation_count() - start_; }
    void reset() { start_ = allocation_count(); }

private:
    std::uint64_t start_;
};

}  // namespace wifisense::alloc
