// Streaming quantile sketches for the serving-grade telemetry layer
// (DESIGN.md §19).
//
// A QuantileSketch is a fixed-memory online estimator of p50/p90/p99/p999
// built on the P² algorithm (Jain & Chlamtác 1985): five markers per tracked
// quantile, adjusted by a piecewise-parabolic update on every observation.
// Memory is a handful of doubles set at construction — observe() never
// allocates, never throws, never reads a clock, and never draws randomness,
// so it is provable inside the `requires(noalloc, noexcept, noclock, det)`
// hot-path contracts (tools/lint, ipa.* rules). P² was chosen over a
// reservoir here precisely because it needs no RNG: the registry sketches
// sit on serving paths whose lint roots forbid raw randomness.
//
// Concurrency: observe() serializes through a tiny CAS spinlock
// (std::atomic exchange / store — no heap, no OS mutex), mirroring the
// histogram's lock-free-but-racy-tolerant spirit while keeping the P²
// marker state internally consistent. Sketch estimates are observational
// only and never feed back into computed outputs, so cross-thread
// interleaving of observations is allowed to perturb the *estimate* (never
// a bitwise-gated result).
//
// Like every instrument in common/metrics.hpp: creation (obs_sketch) takes
// the registry lock and may allocate — hoist the reference out of hot
// loops; recording is runtime-gated on metrics_enabled() and costs one
// relaxed atomic load and a branch when disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/metrics.hpp"  // metrics_enabled() gate

namespace wifisense::common {

/// One P² estimator for a single quantile q in (0,1). Not thread-safe on
/// its own; QuantileSketch serializes access. ~13 doubles of state, fixed
/// at construction.
class P2Quantile {
public:
    explicit P2Quantile(double q) : q_(q) {}

    /// Fold one observation into the marker state. Pure arithmetic: no
    /// allocation, no exceptions, no clock, no RNG.
    void observe(double v);

    /// Current estimate of the q-quantile (the middle marker height). With
    /// fewer than five observations, the exact sample quantile so far.
    [[nodiscard]] double estimate() const;

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double quantile() const { return q_; }
    void reset();

private:
    double q_;
    double heights_[5] = {0, 0, 0, 0, 0};  ///< marker heights (sorted)
    double pos_[5] = {1, 2, 3, 4, 5};      ///< actual marker positions
    double desired_[5] = {0, 0, 0, 0, 0};  ///< desired marker positions
    std::uint64_t n_ = 0;                  ///< observations so far
};

/// The quantile set every registry sketch tracks.
inline constexpr double kSketchQuantiles[] = {0.5, 0.9, 0.99, 0.999};
inline constexpr std::size_t kSketchQuantileCount = 4;

/// Fixed-memory streaming sketch of p50/p90/p99/p999 plus count/min/max/sum.
/// observe() is gated on metrics_enabled() and holds the hot-path purity
/// contracts; query methods are registry-export-time conveniences.
class QuantileSketch {
public:
    explicit QuantileSketch(std::string name);

    /// Record one sample. NaN observations are dropped (they would poison
    /// every marker). Proven `noalloc, noexcept, noclock, det` — see the
    /// lint contract at the definition.
    void observe(double v);

    /// Estimate for kSketchQuantiles[i].
    [[nodiscard]] double estimate(std::size_t i) const;
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const;
    void reset();
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    void lock_spin() const {
        while (lock_.exchange(1, std::memory_order_acquire) != 0) {
        }
    }
    void unlock_spin() const { lock_.store(0, std::memory_order_release); }

    std::string name_;
    mutable std::atomic<std::uint32_t> lock_{0};
    P2Quantile est_[kSketchQuantileCount] = {
        P2Quantile(kSketchQuantiles[0]), P2Quantile(kSketchQuantiles[1]),
        P2Quantile(kSketchQuantiles[2]), P2Quantile(kSketchQuantiles[3])};
    std::atomic<std::uint64_t> count_{0};
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Registry lookup-or-create, alongside obs_counter / obs_gauge /
/// obs_histogram (defined in common/metrics.cpp — one registry, one export
/// order). May allocate on first use; hoist out of hot loops.
QuantileSketch& obs_sketch(std::string_view name);

/// Compact JSON of every registered sketch:
/// {"name":{"count":N,"min":..,"max":..,"sum":..,"p50":..,...}} — names
/// sorted, deterministic. Consumed by the telemetry snapshot.
std::string sketches_to_json();

}  // namespace wifisense::common
