#include "common/telemetry/sliding_window.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace wifisense::common {

namespace {

/// Stream time -> epoch index (floor; negative times land in negative
/// epochs, which the ring handles via the wrapped modulo below).
std::int64_t epoch_of(double stream_t, double width) {
    return static_cast<std::int64_t>(std::floor(stream_t / width));
}

/// Non-negative slot index for a (possibly negative) epoch.
std::size_t slot_of(std::int64_t epoch, std::size_t n) {
    const std::int64_t m = static_cast<std::int64_t>(n);
    return static_cast<std::size_t>(((epoch % m) + m) % m);
}

/// Trailing-seconds query span in epochs, clamped to the ring.
std::size_t span_epochs(double seconds, const WindowConfig& cfg) {
    const double k = std::ceil(seconds / cfg.epoch_seconds);
    if (!(k > 0.0)) return 1;
    if (k >= static_cast<double>(cfg.epochs)) return cfg.epochs;
    return static_cast<std::size_t>(k);
}

}  // namespace

WindowedCounter::WindowedCounter(std::string name, const WindowConfig& cfg)
    : name_(std::move(name)), cfg_(cfg) {
    if (cfg_.epochs == 0) cfg_.epochs = 1;
    if (!(cfg_.epoch_seconds > 0.0)) cfg_.epoch_seconds = 1.0;
    counts_.assign(cfg_.epochs, 0);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
bool WindowedCounter::advance(std::int64_t epoch) {
    if (!has_epoch_) {
        has_epoch_ = true;
        newest_epoch_ = epoch;
        return true;
    }
    if (epoch > newest_epoch_) {
        const std::int64_t jump = epoch - newest_epoch_;
        if (jump >= static_cast<std::int64_t>(cfg_.epochs)) {
            std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
        } else {
            for (std::int64_t e = newest_epoch_ + 1; e <= epoch; ++e)
                counts_[slot_of(e, cfg_.epochs)] = 0;
        }
        newest_epoch_ = epoch;
        return true;
    }
    return newest_epoch_ - epoch < static_cast<std::int64_t>(cfg_.epochs);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void WindowedCounter::add(double stream_t, std::uint64_t n) {
    if (!metrics_enabled()) return;
    if (!(stream_t == stream_t)) return;  // NaN time has no epoch
    const std::int64_t e = epoch_of(stream_t, cfg_.epoch_seconds);
    lock_spin();
    if (advance(e))
        counts_[slot_of(e, cfg_.epochs)] += n;
    else
        late_dropped_.fetch_add(1, std::memory_order_relaxed);
    unlock_spin();
}

[[nodiscard]] std::uint64_t WindowedCounter::sum_last(double seconds) const {
    lock_spin();
    std::uint64_t total = 0;
    if (has_epoch_) {
        const std::size_t k = span_epochs(seconds, cfg_);
        for (std::size_t i = 0; i < k; ++i)
            total += counts_[slot_of(newest_epoch_ - static_cast<std::int64_t>(i),
                                     cfg_.epochs)];
    }
    unlock_spin();
    return total;
}

[[nodiscard]] double WindowedCounter::rate_per_s(double seconds) const {
    const double span = static_cast<double>(span_epochs(seconds, cfg_)) *
                        cfg_.epoch_seconds;
    return span > 0.0 ? static_cast<double>(sum_last(seconds)) / span : 0.0;
}

[[nodiscard]] std::uint64_t WindowedCounter::total() const {
    return sum_last(static_cast<double>(cfg_.epochs) * cfg_.epoch_seconds);
}

void WindowedCounter::reset() {
    lock_spin();
    std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
    has_epoch_ = false;
    newest_epoch_ = 0;
    late_dropped_.store(0, std::memory_order_relaxed);
    unlock_spin();
}

WindowedQuantile::WindowedQuantile(std::string name, const WindowConfig& cfg)
    : name_(std::move(name)), cfg_(cfg) {
    if (cfg_.epochs == 0) cfg_.epochs = 1;
    if (cfg_.reservoir == 0) cfg_.reservoir = 1;
    if (!(cfg_.epoch_seconds > 0.0)) cfg_.epoch_seconds = 1.0;
    epochs_.assign(cfg_.epochs, Epoch{});
    samples_.assign(cfg_.epochs * cfg_.reservoir, 0.0);
    scratch_.reserve(cfg_.epochs * cfg_.reservoir);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
bool WindowedQuantile::advance(std::int64_t epoch) {
    if (!has_epoch_) {
        has_epoch_ = true;
        newest_epoch_ = epoch;
        return true;
    }
    if (epoch > newest_epoch_) {
        const std::int64_t jump = epoch - newest_epoch_;
        if (jump >= static_cast<std::int64_t>(cfg_.epochs)) {
            for (Epoch& e : epochs_) e.seen = 0;
        } else {
            for (std::int64_t e = newest_epoch_ + 1; e <= epoch; ++e)
                epochs_[slot_of(e, cfg_.epochs)].seen = 0;
        }
        newest_epoch_ = epoch;
        return true;
    }
    return newest_epoch_ - epoch < static_cast<std::int64_t>(cfg_.epochs);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void WindowedQuantile::observe(double stream_t, double v) {
    if (!metrics_enabled()) return;
    if (!(v == v) || !(stream_t == stream_t)) return;
    const std::int64_t e = epoch_of(stream_t, cfg_.epoch_seconds);
    lock_spin();
    if (!advance(e)) {
        late_dropped_.fetch_add(1, std::memory_order_relaxed);
        unlock_spin();
        return;
    }
    const std::size_t slot = slot_of(e, cfg_.epochs);
    Epoch& ep = epochs_[slot];
    double* reservoir = samples_.data() + slot * cfg_.reservoir;
    if (ep.seen < cfg_.reservoir) {
        reservoir[ep.seen] = v;
    } else {
        // Algorithm R with a deterministic substream draw: the candidate's
        // fate is a pure function of (seed, epoch, arrival index).
        const std::uint64_t draw =
            splitmix64(substream_seed(cfg_.seed, static_cast<std::uint64_t>(e)) +
                       ep.seen);
        const std::uint64_t j = draw % (ep.seen + 1);
        if (j < cfg_.reservoir) reservoir[j] = v;
    }
    ep.seen++;
    unlock_spin();
}

[[nodiscard]] double WindowedQuantile::quantile_last(double seconds,
                                                     double q) const {
    lock_spin();
    scratch_.clear();
    if (has_epoch_) {
        const std::size_t k = span_epochs(seconds, cfg_);
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t slot = slot_of(
                newest_epoch_ - static_cast<std::int64_t>(i), cfg_.epochs);
            const Epoch& ep = epochs_[slot];
            const std::size_t kept =
                ep.seen < cfg_.reservoir ? static_cast<std::size_t>(ep.seen)
                                         : cfg_.reservoir;
            const double* reservoir = samples_.data() + slot * cfg_.reservoir;
            for (std::size_t s = 0; s < kept; ++s)
                scratch_.push_back(reservoir[s]);
        }
    }
    double out = 0.0;
    if (!scratch_.empty()) {
        std::sort(scratch_.begin(), scratch_.end());
        const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
        std::size_t idx = static_cast<std::size_t>(
            clamped * static_cast<double>(scratch_.size()));
        if (idx >= scratch_.size()) idx = scratch_.size() - 1;
        out = scratch_[idx];
    }
    unlock_spin();
    return out;
}

[[nodiscard]] std::uint64_t WindowedQuantile::count_last(double seconds) const {
    lock_spin();
    std::uint64_t total = 0;
    if (has_epoch_) {
        const std::size_t k = span_epochs(seconds, cfg_);
        for (std::size_t i = 0; i < k; ++i)
            total += epochs_[slot_of(newest_epoch_ - static_cast<std::int64_t>(i),
                                     cfg_.epochs)]
                         .seen;
    }
    unlock_spin();
    return total;
}

void WindowedQuantile::reset() {
    lock_spin();
    for (Epoch& e : epochs_) e.seen = 0;
    has_epoch_ = false;
    newest_epoch_ = 0;
    late_dropped_.store(0, std::memory_order_relaxed);
    unlock_spin();
}

}  // namespace wifisense::common
