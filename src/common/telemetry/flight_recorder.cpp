#include "common/telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace wifisense::common {

namespace obsdetail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace obsdetail

namespace {

std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v && p < (std::size_t{1} << 30)) p <<= 1;
    return p;
}

/// One thread's event storage: fixed-capacity ring indexed by a monotonic
/// head counter (same shape as the trace recorder's ThreadRing).
struct FlightRing {
    std::vector<FlightEvent> slots;
    std::uint64_t head = 0;  ///< total events ever written to this ring
};

struct FlightState {
    std::size_t capacity = 0;  ///< power of two
    std::vector<FlightRing> rings;
    std::atomic<std::size_t> next_slot{0};
    std::atomic<std::uint64_t> slot_overflow{0};
    std::atomic<std::uint64_t> next_seq{0};
};

FlightState& state() {
    static FlightState s;
    return s;
}

/// Bumped on every enable()/reset() so threads re-acquire their slot.
std::atomic<std::uint64_t> g_epoch{0};

struct TlSlot {
    std::uint64_t epoch = 0;
    FlightRing* ring = nullptr;
};
thread_local TlSlot tl_slot;

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
FlightRing* local_ring() {
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (tl_slot.epoch != epoch) {
        tl_slot.epoch = epoch;
        FlightState& s = state();
        const std::size_t idx =
            s.next_slot.fetch_add(1, std::memory_order_relaxed);
        if (idx < s.rings.size()) {
            tl_slot.ring = &s.rings[idx];
        } else {
            tl_slot.ring = nullptr;
            s.slot_overflow.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return tl_slot.ring;
}

void append_json_escaped(std::string& out, const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

}  // namespace

void flight_enable(const FlightConfig& cfg) {
    FlightState& s = state();
    obsdetail::g_flight_enabled.store(false, std::memory_order_relaxed);
    s.capacity = round_up_pow2(std::max<std::size_t>(cfg.events_per_thread, 16));
    const std::size_t threads = std::max<std::size_t>(cfg.max_threads, 1);
    s.rings.assign(threads, FlightRing{});
    for (FlightRing& r : s.rings) r.slots.assign(s.capacity, FlightEvent{});
    s.next_slot.store(0, std::memory_order_relaxed);
    s.slot_overflow.store(0, std::memory_order_relaxed);
    s.next_seq.store(0, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_release);
    obsdetail::g_flight_enabled.store(true, std::memory_order_release);
}

void flight_disable() {
    obsdetail::g_flight_enabled.store(false, std::memory_order_relaxed);
}

void flight_reset() {
    FlightState& s = state();
    const bool was_enabled =
        obsdetail::g_flight_enabled.load(std::memory_order_relaxed);
    obsdetail::g_flight_enabled.store(false, std::memory_order_relaxed);
    for (FlightRing& r : s.rings) r.head = 0;
    s.next_slot.store(0, std::memory_order_relaxed);
    s.slot_overflow.store(0, std::memory_order_relaxed);
    s.next_seq.store(0, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_release);
    obsdetail::g_flight_enabled.store(was_enabled, std::memory_order_release);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void flight_record(const char* category, const char* label, double stream_t,
                   double value, double extra) {
    if (!flight_enabled()) return;
    FlightRing* ring = local_ring();
    if (ring == nullptr) return;
    FlightState& s = state();
    FlightEvent& e = ring->slots[ring->head & (s.capacity - 1)];
    e.category = category;
    e.label = label;
    e.stream_t = stream_t;
    e.value = value;
    e.extra = extra;
    e.seq = s.next_seq.fetch_add(1, std::memory_order_relaxed);
    e.tid = static_cast<std::uint32_t>(ring - s.rings.data());
    ++ring->head;
}

std::vector<FlightEvent> flight_snapshot() {
    FlightState& s = state();
    std::vector<FlightEvent> out;
    if (s.capacity == 0) return out;
    for (const FlightRing& r : s.rings) {
        const std::uint64_t kept = std::min<std::uint64_t>(r.head, s.capacity);
        const std::uint64_t first = r.head - kept;
        for (std::uint64_t i = first; i < r.head; ++i)
            out.push_back(r.slots[i & (s.capacity - 1)]);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightEvent& a, const FlightEvent& b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::uint64_t flight_dropped_events() {
    FlightState& s = state();
    std::uint64_t dropped = s.slot_overflow.load(std::memory_order_relaxed);
    for (const FlightRing& r : s.rings)
        if (r.head > s.capacity) dropped += r.head - s.capacity;
    return dropped;
}

std::string flight_to_json(std::size_t tail) {
    std::vector<FlightEvent> events = flight_snapshot();
    const std::size_t first =
        events.size() > tail ? events.size() - tail : 0;
    std::string out = "{\"dropped\":";
    out += std::to_string(flight_dropped_events());
    out += ",\"events\":[";
    char buf[128];
    for (std::size_t i = first; i < events.size(); ++i) {
        const FlightEvent& e = events[i];
        if (i > first) out += ',';
        std::snprintf(buf, sizeof buf, "{\"seq\":%llu,\"tid\":%u,",
                      static_cast<unsigned long long>(e.seq), e.tid);
        out += buf;
        out += "\"category\":\"";
        append_json_escaped(out, e.category == nullptr ? "" : e.category);
        out += "\",\"label\":\"";
        append_json_escaped(out, e.label == nullptr ? "" : e.label);
        std::snprintf(buf, sizeof buf,
                      "\",\"t\":%.6f,\"value\":%.17g,\"extra\":%.17g}",
                      e.stream_t, e.value, e.extra);
        out += buf;
    }
    out += "]}";
    return out;
}

}  // namespace wifisense::common
