// Unified telemetry snapshot export (DESIGN.md §19).
//
// One JSON document captures the whole observability state of a process at
// a point in time: the metric registry (counters / gauges / histograms),
// every quantile sketch, every windowed instrument, every SLO verdict, and
// the flight-recorder tail. Schema:
//
//   {"schema": "wifisense.telemetry_snapshot/v1",
//    "metrics":   { ... common/metrics.hpp export ... },
//    "sketches":  { "name": {"count":N,"min":..,"max":..,"sum":..,
//                            "p50":..,"p90":..,"p99":..,"p999":..}, ... },
//    "windows":   { "counters":  { "name": {...} },
//                   "quantiles": { "name": {...} } },
//    "slo":       [ {"name":..,"state":"ok"|"warn"|"breach", ...}, ... ],
//    "recorder":  {"dropped":N,"events":[...]} }
//
// tools/check_snapshot.py validates this shape in CI. Plumbing mirrors the
// trace/metrics exports: WIFISENSE_SNAPSHOT=path (or the --snapshot-out=
// flag in quickstart and every bench) arms metrics + the flight recorder
// and writes the snapshot at exit.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.hpp"

namespace wifisense::common {

struct SnapshotOptions {
    /// Most recent recorder events included in the "recorder" section.
    std::size_t recorder_tail = 512;
};

/// Render the snapshot document (single line, deterministic section order).
std::string telemetry_snapshot_json(const SnapshotOptions& opts = {});

/// Write telemetry_snapshot_json() (plus a trailing newline) to `path`.
[[nodiscard]] Status write_telemetry_snapshot(const std::string& path,
                                              const SnapshotOptions& opts = {});

}  // namespace wifisense::common
