// Declarative SLOs with multi-window burn-rate evaluation (DESIGN.md §19).
//
// An SloSpec states two objectives over a request stream:
//
//   - availability: at least `availability_pct` of requests succeed;
//   - latency: the `latency_quantile` of request latency stays at or
//     below `latency_objective_us`.
//
// Evaluation follows the multi-window burn-rate rule: with error budget
// eb = 1 - availability_pct/100, the burn rate of a window is
// (error fraction in window) / eb — burn 1.0 consumes the budget exactly
// at the sustainable pace, burn N consumes it N times too fast. A breach
// requires BOTH the fast window (reacts in seconds) and the slow window
// (confirms it is not a blip) to exceed their thresholds; one window alone
// is a warning. Latency is judged the same way: the windowed quantile
// (telemetry/sliding_window.hpp reservoirs) must exceed the objective in
// both windows to breach.
//
// SloMonitor::record() sits on the serving path and holds the
// `requires(noalloc, noexcept)` contract (it feeds windowed counters and a
// windowed reservoir — all fixed memory). evaluate() is an export-time
// call: it may allocate, and on a breach it drops an "slo" event into the
// flight recorder so the snapshot shows *when* the budget died.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/telemetry/sliding_window.hpp"

namespace wifisense::common {

struct SloSpec {
    std::string name = "serve";
    /// Latency objective: the `latency_quantile` of request latency must
    /// stay <= `latency_objective_us`. 0 disables the latency objective.
    double latency_quantile = 0.99;
    double latency_objective_us = 0.0;
    /// Availability objective in percent (e.g. 99.5). 0 disables it.
    double availability_pct = 0.0;
    /// Window spans in stream-time seconds.
    double fast_window_s = 5.0;
    double slow_window_s = 60.0;
    /// Burn-rate thresholds (fast reacts, slow confirms).
    double fast_burn_max = 14.0;
    double slow_burn_max = 6.0;

    /// Render back to the parse_slo_spec() format.
    [[nodiscard]] std::string to_spec() const;
};

/// Parse "name=serve,p99<=800,avail>=99.5,fast=5,slow=60,fast_burn=14,
/// slow_burn=6". The latency key is any of p50/p90/p99/p999 (objective in
/// microseconds); every key is optional but at least one objective
/// (latency or availability) must be present.
[[nodiscard]] Result<SloSpec> parse_slo_spec(std::string_view spec);

enum class SloState { kOk, kWarn, kBreach };
[[nodiscard]] const char* to_string(SloState s);

/// The typed gate result the serving loop / benches act on.
struct SloVerdict {
    SloState state = SloState::kOk;
    bool availability_breach = false;  ///< both windows over burn threshold
    bool latency_breach = false;       ///< both windows over the objective
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    double availability_fast_pct = 100.0;
    double availability_slow_pct = 100.0;
    double latency_fast_us = 0.0;  ///< windowed quantile, fast window
    double latency_slow_us = 0.0;
    std::uint64_t requests_fast = 0;
    std::uint64_t requests_slow = 0;
};

class SloMonitor {
public:
    explicit SloMonitor(SloSpec spec);

    /// Record one request outcome at stream time `stream_t`: `ok` is the
    /// availability signal, `latency_us` the request latency. Holds the
    /// `requires(noalloc, noexcept)` serving-path contract.
    void record(double stream_t, double latency_us, bool ok);

    /// Evaluate both windows as of the newest stream time seen. On a
    /// breach, drops an "slo" event into the flight recorder. Not a
    /// hot-path call (the windowed quantile query sorts its scratch).
    [[nodiscard]] SloVerdict evaluate() const;

    [[nodiscard]] const SloSpec& spec() const { return spec_; }
    [[nodiscard]] double last_stream_t() const { return last_t_; }
    void reset();

private:
    SloSpec spec_;
    WindowedCounter total_;
    WindowedCounter errors_;  ///< !ok requests (availability objective)
    WindowedQuantile latency_;
    double last_t_ = 0.0;
};

/// Registry lookup-or-create by spec.name (first registration wins, like
/// the histogram edges). Enumerated by the telemetry snapshot.
SloMonitor& obs_slo(const SloSpec& spec);

/// JSON array of every registered monitor's verdict, names sorted:
/// [{"name":..,"state":"ok",...},...]. Consumed by the snapshot export.
std::string slo_verdicts_to_json();

/// Render a human-readable verdict table (quickstart --slo output).
std::string format_verdict_table(const SloSpec& spec, const SloVerdict& v);

}  // namespace wifisense::common
