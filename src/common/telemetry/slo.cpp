#include "common/telemetry/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/telemetry/flight_recorder.hpp"

namespace wifisense::common {

namespace {

WindowConfig monitor_window(const SloSpec& spec) {
    WindowConfig cfg;
    cfg.epoch_seconds = 1.0;
    const double span = std::max(spec.slow_window_s, spec.fast_window_s);
    cfg.epochs = span > 1.0 ? static_cast<std::size_t>(span + 0.5) : 1;
    return cfg;
}

/// Error-budget burn rate of one window: observed error fraction over the
/// sustainable fraction. availability_pct == 100 leaves no budget at all,
/// so any error saturates the burn.
double burn_rate(std::uint64_t errors, std::uint64_t total,
                 double availability_pct) {
    if (total == 0) return 0.0;
    const double err_frac =
        static_cast<double>(errors) / static_cast<double>(total);
    const double budget = 1.0 - availability_pct / 100.0;
    if (budget <= 0.0) return err_frac > 0.0 ? 1e9 : 0.0;
    return err_frac / budget;
}

struct SloRegistry {
    std::mutex mu;
    std::map<std::string, std::unique_ptr<SloMonitor>, std::less<>> monitors;
};

SloRegistry& slo_registry() {
    static SloRegistry r;
    return r;
}

void append_double(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

[[nodiscard]] std::string SloSpec::to_spec() const {
    char buf[256];
    const char* qname = latency_quantile >= 0.999  ? "p999"
                        : latency_quantile >= 0.99 ? "p99"
                        : latency_quantile >= 0.9  ? "p90"
                                                   : "p50";
    std::string out = "name=" + name;
    if (latency_objective_us > 0.0) {
        std::snprintf(buf, sizeof buf, ",%s<=%g", qname, latency_objective_us);
        out += buf;
    }
    if (availability_pct > 0.0) {
        std::snprintf(buf, sizeof buf, ",avail>=%g", availability_pct);
        out += buf;
    }
    std::snprintf(buf, sizeof buf, ",fast=%g,slow=%g,fast_burn=%g,slow_burn=%g",
                  fast_window_s, slow_window_s, fast_burn_max, slow_burn_max);
    out += buf;
    return out;
}

[[nodiscard]] Result<SloSpec> parse_slo_spec(std::string_view spec) {
    SloSpec out;
    bool have_objective = false;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = std::min(spec.find(',', pos), spec.size());
        const std::string_view tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty()) {
            if (comma == spec.size()) break;
            continue;
        }
        const auto bad = [&](const char* why) {
            return Result<SloSpec>(
                StatusCode::kInvalidArgument,
                "parse_slo_spec: " + std::string(why) + " in '" +
                    std::string(tok) + "'");
        };
        const auto num = [&](std::string_view v, double* dst) {
            char* end = nullptr;
            const std::string s(v);
            const double parsed = std::strtod(s.c_str(), &end);
            if (end == s.c_str() || *end != '\0') return false;
            *dst = parsed;
            return true;
        };
        std::size_t le = tok.find("<=");
        std::size_t ge = tok.find(">=");
        if (le != std::string_view::npos) {
            const std::string_view key = tok.substr(0, le);
            double v = 0.0;
            if (!num(tok.substr(le + 2), &v) || v <= 0.0)
                return bad("bad latency objective");
            if (key == "p50") out.latency_quantile = 0.5;
            else if (key == "p90") out.latency_quantile = 0.9;
            else if (key == "p99") out.latency_quantile = 0.99;
            else if (key == "p999") out.latency_quantile = 0.999;
            else return bad("unknown latency quantile (want p50/p90/p99/p999)");
            out.latency_objective_us = v;
            have_objective = true;
        } else if (ge != std::string_view::npos) {
            if (tok.substr(0, ge) != "avail")
                return bad("unknown '>=' objective (want avail)");
            double v = 0.0;
            if (!num(tok.substr(ge + 2), &v) || v <= 0.0 || v > 100.0)
                return bad("availability must be in (0,100]");
            out.availability_pct = v;
            have_objective = true;
        } else {
            const std::size_t eq = tok.find('=');
            if (eq == std::string_view::npos) return bad("missing '='");
            const std::string_view key = tok.substr(0, eq);
            const std::string_view val = tok.substr(eq + 1);
            if (key == "name") {
                if (val.empty()) return bad("empty name");
                out.name = std::string(val);
            } else {
                double v = 0.0;
                if (!num(val, &v) || v <= 0.0) return bad("bad numeric value");
                if (key == "fast") out.fast_window_s = v;
                else if (key == "slow") out.slow_window_s = v;
                else if (key == "fast_burn") out.fast_burn_max = v;
                else if (key == "slow_burn") out.slow_burn_max = v;
                else return bad("unknown key");
            }
        }
        if (comma == spec.size()) break;
    }
    if (!have_objective)
        return Result<SloSpec>(StatusCode::kInvalidArgument,
                               "parse_slo_spec: no objective (give pNN<=US "
                               "and/or avail>=PCT)");
    if (out.fast_window_s > out.slow_window_s)
        return Result<SloSpec>(StatusCode::kInvalidArgument,
                               "parse_slo_spec: fast window wider than slow");
    return out;
}

[[nodiscard]] const char* to_string(SloState s) {
    switch (s) {
        case SloState::kOk: return "ok";
        case SloState::kWarn: return "warn";
        case SloState::kBreach: return "breach";
    }
    return "unknown";
}

SloMonitor::SloMonitor(SloSpec spec)
    : spec_(std::move(spec)),
      total_("slo." + spec_.name + ".total", monitor_window(spec_)),
      errors_("slo." + spec_.name + ".errors", monitor_window(spec_)),
      latency_("slo." + spec_.name + ".latency_us", monitor_window(spec_)) {}

// wifisense-lint: requires(noalloc, noexcept)
void SloMonitor::record(double stream_t, double latency_us, bool ok) {
    total_.add(stream_t, 1);
    // Zero-count adds still advance the errors ring: a clean stream must age
    // old errors out of the windows, not freeze them at the last failure.
    errors_.add(stream_t, ok ? 0 : 1);
    latency_.observe(stream_t, latency_us);
    if (stream_t == stream_t && stream_t > last_t_) last_t_ = stream_t;
}

[[nodiscard]] SloVerdict SloMonitor::evaluate() const {
    SloVerdict v;
    v.requests_fast = total_.sum_last(spec_.fast_window_s);
    v.requests_slow = total_.sum_last(spec_.slow_window_s);
    const std::uint64_t err_fast = errors_.sum_last(spec_.fast_window_s);
    const std::uint64_t err_slow = errors_.sum_last(spec_.slow_window_s);
    if (v.requests_fast > 0)
        v.availability_fast_pct =
            100.0 * static_cast<double>(v.requests_fast - err_fast) /
            static_cast<double>(v.requests_fast);
    if (v.requests_slow > 0)
        v.availability_slow_pct =
            100.0 * static_cast<double>(v.requests_slow - err_slow) /
            static_cast<double>(v.requests_slow);
    v.latency_fast_us =
        latency_.quantile_last(spec_.fast_window_s, spec_.latency_quantile);
    v.latency_slow_us =
        latency_.quantile_last(spec_.slow_window_s, spec_.latency_quantile);

    bool warn = false;
    if (spec_.availability_pct > 0.0) {
        v.fast_burn = burn_rate(err_fast, v.requests_fast, spec_.availability_pct);
        v.slow_burn = burn_rate(err_slow, v.requests_slow, spec_.availability_pct);
        const bool fast_hot = v.fast_burn > spec_.fast_burn_max;
        const bool slow_hot = v.slow_burn > spec_.slow_burn_max;
        v.availability_breach = fast_hot && slow_hot;
        warn = warn || (fast_hot != slow_hot);
    }
    if (spec_.latency_objective_us > 0.0) {
        const bool fast_hot = v.latency_fast_us > spec_.latency_objective_us;
        const bool slow_hot = v.latency_slow_us > spec_.latency_objective_us;
        v.latency_breach = fast_hot && slow_hot;
        warn = warn || (fast_hot != slow_hot);
    }
    if (v.availability_breach || v.latency_breach) {
        v.state = SloState::kBreach;
        if (v.availability_breach)
            flight_record("slo", "availability-breach", last_t_, v.fast_burn,
                          v.slow_burn);
        if (v.latency_breach)
            flight_record("slo", "latency-breach", last_t_, v.latency_fast_us,
                          v.latency_slow_us);
    } else if (warn) {
        v.state = SloState::kWarn;
    }
    return v;
}

void SloMonitor::reset() {
    total_.reset();
    errors_.reset();
    latency_.reset();
    last_t_ = 0.0;
}

SloMonitor& obs_slo(const SloSpec& spec) {
    SloRegistry& r = slo_registry();
    std::lock_guard lock(r.mu);
    auto it = r.monitors.find(spec.name);
    if (it == r.monitors.end())
        it = r.monitors.emplace(spec.name, std::make_unique<SloMonitor>(spec))
                 .first;
    return *it->second;
}

std::string slo_verdicts_to_json() {
    SloRegistry& r = slo_registry();
    std::lock_guard lock(r.mu);
    std::string out = "[";
    bool first = true;
    for (const auto& [name, mon] : r.monitors) {
        const SloVerdict v = mon->evaluate();
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"" + name + "\",\"spec\":\"" +
               mon->spec().to_spec() + "\",\"state\":\"";
        out += to_string(v.state);
        out += "\",\"availability_breach\":";
        out += v.availability_breach ? "true" : "false";
        out += ",\"latency_breach\":";
        out += v.latency_breach ? "true" : "false";
        out += ",\"fast_burn\":";
        append_double(out, v.fast_burn);
        out += ",\"slow_burn\":";
        append_double(out, v.slow_burn);
        out += ",\"availability_fast_pct\":";
        append_double(out, v.availability_fast_pct);
        out += ",\"availability_slow_pct\":";
        append_double(out, v.availability_slow_pct);
        out += ",\"latency_fast_us\":";
        append_double(out, v.latency_fast_us);
        out += ",\"latency_slow_us\":";
        append_double(out, v.latency_slow_us);
        out += ",\"requests_fast\":" + std::to_string(v.requests_fast);
        out += ",\"requests_slow\":" + std::to_string(v.requests_slow);
        out += '}';
    }
    out += "]";
    return out;
}

std::string format_verdict_table(const SloSpec& spec, const SloVerdict& v) {
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf, "SLO '%s': state=%s\n", spec.name.c_str(),
                  to_string(v.state));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  %-10s %9s %8s %10s %8s\n", "window", "requests", "avail%",
                  "p-lat us", "burn");
    out += buf;
    std::snprintf(buf, sizeof buf, "  fast(%gs)%*s %9llu %7.3f%% %10.1f %8.2f\n",
                  spec.fast_window_s, 0, "",
                  static_cast<unsigned long long>(v.requests_fast),
                  v.availability_fast_pct, v.latency_fast_us, v.fast_burn);
    out += buf;
    std::snprintf(buf, sizeof buf, "  slow(%gs)%*s %9llu %7.3f%% %10.1f %8.2f\n",
                  spec.slow_window_s, 0, "",
                  static_cast<unsigned long long>(v.requests_slow),
                  v.availability_slow_pct, v.latency_slow_us, v.slow_burn);
    out += buf;
    if (spec.latency_objective_us > 0.0) {
        std::snprintf(buf, sizeof buf, "  latency objective: p%g <= %g us%s\n",
                      spec.latency_quantile * 100.0, spec.latency_objective_us,
                      v.latency_breach ? "  ** BREACH **" : "");
        out += buf;
    }
    if (spec.availability_pct > 0.0) {
        std::snprintf(buf, sizeof buf,
                      "  availability objective: >= %g%% (burn thresholds "
                      "fast>%g slow>%g)%s\n",
                      spec.availability_pct, spec.fast_burn_max,
                      spec.slow_burn_max,
                      v.availability_breach ? "  ** BREACH **" : "");
        out += buf;
    }
    return out;
}

}  // namespace wifisense::common
