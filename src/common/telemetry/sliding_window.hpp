// Ring-of-epochs sliding-window aggregation (DESIGN.md §19).
//
// Cumulative counters answer "how many ever"; a serving loop needs "how
// many in the last N seconds". Both windowed instruments here share one
// model: stream time (the sample timestamps already threaded through the
// detectors — never a wall clock) is bucketed into fixed-width epochs, and
// a fixed ring of the most recent `epochs` buckets is retained. Advancing
// past the newest epoch zeroes the buckets in between; observations older
// than the whole window are dropped and counted (`late_dropped`), so
// out-of-order arrivals within the window still land in their bucket.
//
//   - WindowedCounter: one uint64 per epoch; queries sum the trailing K
//     seconds and derive rates.
//   - WindowedQuantile: one fixed-capacity reservoir per epoch, filled by
//     Algorithm R with a *deterministic* substream draw — the j-th
//     candidate of epoch e keeps/replaces based on
//     splitmix64(substream_seed(seed, e) + j), so the retained sample set
//     is a pure function of (seed, per-epoch arrival order), never of a
//     random_device. Queries merge the live epochs' samples into a
//     pre-reserved scratch buffer and read nearest-rank quantiles.
//
// Recording (add / observe) is runtime-gated on metrics_enabled(), never
// allocates after construction, never throws, never reads a clock, and
// draws only the substream hash above — provable inside the
// `requires(noalloc, noexcept, noclock, det)` lint contracts. Queries are
// export-time conveniences and take the same spinlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"  // metrics_enabled() gate

namespace wifisense::common {

struct WindowConfig {
    /// Width of one epoch bucket in stream-time seconds.
    double epoch_seconds = 1.0;
    /// Ring length: the window covers epochs * epoch_seconds of stream time.
    std::size_t epochs = 60;
    /// Samples retained per epoch by the windowed quantile reservoir.
    std::size_t reservoir = 128;
    /// Substream seed for the deterministic reservoir draws.
    std::uint64_t seed = 0x77F15EED5EEDull;
};

/// Windowed event counter: ring of per-epoch counts over stream time.
class WindowedCounter {
public:
    WindowedCounter(std::string name, const WindowConfig& cfg);

    /// Count `n` events at stream time `stream_t` (seconds). Proven
    /// `noalloc, noexcept, noclock, det` — see the lint contract.
    void add(double stream_t, std::uint64_t n = 1);

    /// Sum over the trailing `seconds` of the window (clamped to the window
    /// span), ending at the newest epoch seen.
    [[nodiscard]] std::uint64_t sum_last(double seconds) const;
    /// Events per second over the trailing `seconds`.
    [[nodiscard]] double rate_per_s(double seconds) const;
    /// Sum over the whole window.
    [[nodiscard]] std::uint64_t total() const;
    /// Observations dropped because they predate the whole window.
    [[nodiscard]] std::uint64_t late_dropped() const {
        return late_dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const WindowConfig& config() const { return cfg_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    void reset();

private:
    void lock_spin() const {
        while (lock_.exchange(1, std::memory_order_acquire) != 0) {
        }
    }
    void unlock_spin() const { lock_.store(0, std::memory_order_release); }
    /// Rotate the ring forward so `epoch` is representable; true if `epoch`
    /// is inside the window afterwards. Caller holds the lock.
    bool advance(std::int64_t epoch);

    std::string name_;
    WindowConfig cfg_;
    mutable std::atomic<std::uint32_t> lock_{0};
    std::vector<std::uint64_t> counts_;  ///< cfg_.epochs slots, fixed
    std::int64_t newest_epoch_ = 0;
    bool has_epoch_ = false;
    std::atomic<std::uint64_t> late_dropped_{0};
};

/// Windowed quantile estimator: ring of per-epoch deterministic reservoirs.
class WindowedQuantile {
public:
    WindowedQuantile(std::string name, const WindowConfig& cfg);

    /// Record one sample at stream time `stream_t`. NaN samples are
    /// dropped. Proven `noalloc, noexcept, noclock, det`.
    void observe(double stream_t, double v);

    /// Nearest-rank quantile over the samples retained in the trailing
    /// `seconds` of the window (0 when empty). Not a hot-path call: merges
    /// into pre-reserved scratch and sorts.
    [[nodiscard]] double quantile_last(double seconds, double q) const;
    /// Samples *offered* to the trailing `seconds` (retained + displaced).
    [[nodiscard]] std::uint64_t count_last(double seconds) const;
    [[nodiscard]] std::uint64_t late_dropped() const {
        return late_dropped_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const WindowConfig& config() const { return cfg_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    void reset();

private:
    struct Epoch {
        std::uint64_t seen = 0;  ///< samples offered to this epoch
    };

    void lock_spin() const {
        while (lock_.exchange(1, std::memory_order_acquire) != 0) {
        }
    }
    void unlock_spin() const { lock_.store(0, std::memory_order_release); }
    bool advance(std::int64_t epoch);

    std::string name_;
    WindowConfig cfg_;
    mutable std::atomic<std::uint32_t> lock_{0};
    std::vector<Epoch> epochs_;           ///< cfg_.epochs slots
    std::vector<double> samples_;         ///< epochs * reservoir, fixed
    mutable std::vector<double> scratch_; ///< merge buffer for queries
    std::int64_t newest_epoch_ = 0;
    bool has_epoch_ = false;
    std::atomic<std::uint64_t> late_dropped_{0};
};

/// Registry lookup-or-create alongside the other instruments (defined in
/// common/metrics.cpp). The config is applied on first registration;
/// later lookups of the same name keep the original window shape.
WindowedCounter& obs_windowed_counter(std::string_view name,
                                      const WindowConfig& cfg = {});
WindowedQuantile& obs_windowed_quantile(std::string_view name,
                                        const WindowConfig& cfg = {});

/// Compact JSON of every registered windowed instrument, consumed by the
/// telemetry snapshot: {"counters":{...},"quantiles":{...}} — names sorted.
std::string windows_to_json();

}  // namespace wifisense::common
