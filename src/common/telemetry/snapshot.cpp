#include "common/telemetry/snapshot.hpp"

#include <cstdio>

#include "common/metrics.hpp"
#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/quantile_sketch.hpp"
#include "common/telemetry/sliding_window.hpp"
#include "common/telemetry/slo.hpp"

namespace wifisense::common {

std::string telemetry_snapshot_json(const SnapshotOptions& opts) {
    std::string out = "{\"schema\":\"wifisense.telemetry_snapshot/v1\"";
    out += ",\"metrics\":";
    out += metrics_to_json();
    out += ",\"sketches\":";
    out += sketches_to_json();
    out += ",\"windows\":";
    out += windows_to_json();
    out += ",\"slo\":";
    out += slo_verdicts_to_json();
    out += ",\"recorder\":";
    out += flight_to_json(opts.recorder_tail);
    out += "}";
    return out;
}

[[nodiscard]] Status write_telemetry_snapshot(const std::string& path,
                                              const SnapshotOptions& opts) {
    const std::string json = telemetry_snapshot_json(opts) + "\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError,
                      "write_telemetry_snapshot: cannot open " + path);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size())
        return Status(StatusCode::kIoError,
                      "write_telemetry_snapshot: short write to " + path);
    return Status::ok();
}

}  // namespace wifisense::common
