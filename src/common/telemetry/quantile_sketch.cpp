#include "common/telemetry/quantile_sketch.hpp"

namespace wifisense::common {

namespace {

/// Piecewise-parabolic (P²) height prediction for marker i moved by d
/// (±1). Falls back to linear interpolation when the parabola would push
/// the marker past a neighbour (the standard P² guard).
double parabolic(const double* h, const double* p, int i, double d) {
    const double num1 = p[i] - p[i - 1] + d;
    const double num2 = p[i + 1] - p[i] - d;
    const double dp1 = (h[i + 1] - h[i]) / (p[i + 1] - p[i]);
    const double dm1 = (h[i] - h[i - 1]) / (p[i] - p[i - 1]);
    return h[i] + d / (p[i + 1] - p[i - 1]) * (num1 * dp1 + num2 * dm1);
}

double linear(const double* h, const double* p, int i, double d) {
    const int j = i + static_cast<int>(d);
    return h[i] + d * (h[j] - h[i]) / (p[j] - p[i]);
}

}  // namespace

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void P2Quantile::observe(double v) {
    if (n_ < 5) {
        // Warm-up: insertion-sort the first five observations into place.
        std::uint64_t i = n_;
        while (i > 0 && heights_[i - 1] > v) {
            heights_[i] = heights_[i - 1];
            --i;
        }
        heights_[i] = v;
        ++n_;
        if (n_ == 5) {
            for (int k = 0; k < 5; ++k) pos_[k] = k + 1;
            desired_[0] = 1.0;
            desired_[1] = 1.0 + 2.0 * q_;
            desired_[2] = 1.0 + 4.0 * q_;
            desired_[3] = 3.0 + 2.0 * q_;
            desired_[4] = 5.0;
        }
        return;
    }

    // Locate the cell and clamp the extremes.
    int k;
    if (v < heights_[0]) {
        heights_[0] = v;
        k = 0;
    } else if (v >= heights_[4]) {
        heights_[4] = v;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && v >= heights_[k + 1]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
    ++n_;

    // Desired positions advance by their quantile-proportional increments.
    desired_[1] += q_ / 2.0;
    desired_[2] += q_;
    desired_[3] += (1.0 + q_) / 2.0;
    desired_[4] += 1.0;

    // Adjust the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
        const double d = desired_[i] - pos_[i];
        if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
            (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
            const double step = d >= 0.0 ? 1.0 : -1.0;
            double h = parabolic(heights_, pos_, i, step);
            if (h <= heights_[i - 1] || h >= heights_[i + 1])
                h = linear(heights_, pos_, i, step);
            heights_[i] = h;
            pos_[i] += step;
        }
    }
}

[[nodiscard]] double P2Quantile::estimate() const {
    if (n_ == 0) return 0.0;
    if (n_ < 5) {
        // Exact sample quantile over the sorted warm-up buffer
        // (nearest-rank on n_ observations).
        const double rank = q_ * static_cast<double>(n_ - 1);
        std::uint64_t lo = static_cast<std::uint64_t>(rank);
        if (lo >= n_ - 1) return heights_[n_ - 1];
        const double frac = rank - static_cast<double>(lo);
        return heights_[lo] + frac * (heights_[lo + 1] - heights_[lo]);
    }
    return heights_[2];
}

void P2Quantile::reset() {
    n_ = 0;
    for (int i = 0; i < 5; ++i) {
        heights_[i] = 0.0;
        pos_[i] = i + 1;
        desired_[i] = 0.0;
    }
}

QuantileSketch::QuantileSketch(std::string name) : name_(std::move(name)) {}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void QuantileSketch::observe(double v) {
    if (!metrics_enabled()) return;
    if (!(v == v)) return;  // NaN would poison every marker
    lock_spin();
    for (auto& e : est_) e.observe(v);
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0) {
        min_ = v;
        max_ = v;
        sum_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
        sum_ += v;
    }
    count_.store(n + 1, std::memory_order_relaxed);
    unlock_spin();
}

[[nodiscard]] double QuantileSketch::estimate(std::size_t i) const {
    lock_spin();
    const double v = est_[i].estimate();
    unlock_spin();
    return v;
}

[[nodiscard]] double QuantileSketch::min() const {
    lock_spin();
    const double v = min_;
    unlock_spin();
    return v;
}

[[nodiscard]] double QuantileSketch::max() const {
    lock_spin();
    const double v = max_;
    unlock_spin();
    return v;
}

[[nodiscard]] double QuantileSketch::sum() const {
    lock_spin();
    const double v = sum_;
    unlock_spin();
    return v;
}

void QuantileSketch::reset() {
    lock_spin();
    for (auto& e : est_) e.reset();
    count_.store(0, std::memory_order_relaxed);
    min_ = 0.0;
    max_ = 0.0;
    sum_ = 0.0;
    unlock_spin();
}

}  // namespace wifisense::common
