// Flight recorder: a pre-reserved per-thread ring of recent structured
// events — the "what just happened" buffer dumped when something breaks
// (DESIGN.md §19).
//
// Traces answer "where did the time go"; metrics answer "how much"; the
// flight recorder answers "in what order did the interesting state changes
// arrive" — detector mode transitions, fusion-tier ladder walks, link
// health flips, wire defects, SLO breaches. Each event is two interned
// string pointers (category + label: string literals only, mirroring the
// trace-span contract), a stream timestamp, and two numeric payloads.
//
// The memory model is common/trace.cpp's: rings and the thread-slot table
// are sized once at flight_enable() time; recording acquires a per-thread
// slot via one atomic increment, then writes slots[head & (capacity-1)].
// A full ring wraps (oldest events drop, counted), recording never
// allocates or blocks. Unlike the trace recorder there is NO clock read:
// ordering comes from a global atomic sequence counter and the caller's
// stream time, so record() holds the full `requires(noalloc, noexcept,
// noclock, det)` contract and is callable from the wire-decoder and
// reassembler hot paths whose lint roots forbid clock reads outright.
//
// Disabled cost: one relaxed atomic load and a branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wifisense::common {

struct FlightConfig {
    /// Ring capacity per thread slot, rounded up to a power of two.
    std::size_t events_per_thread = std::size_t{1} << 10;
    /// Thread slots pre-reserved at enable time; threads beyond this record
    /// nothing (counted in flight_dropped_events()).
    std::size_t max_threads = 64;
};

/// One recorded event. `seq` is a global order stamp (atomic counter, not a
/// clock); `stream_t` is the caller's stream time in seconds (0 when the
/// recording site has no stream clock, e.g. the byte-offset-based decoder).
struct FlightEvent {
    const char* category = nullptr;  ///< e.g. "tier", "mode", "wire"
    const char* label = nullptr;     ///< e.g. "subset-fusion", "seq-gap"
    double stream_t = 0.0;
    double value = 0.0;  ///< primary payload (link id, mode index, ...)
    double extra = 0.0;  ///< secondary payload (missing count, detail, ...)
    std::uint64_t seq = 0;
    std::uint32_t tid = 0;
};

namespace obsdetail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace obsdetail

/// True while the recorder accepts events (the relaxed load is the entire
/// disabled-path cost of flight_record()).
inline bool flight_enabled() {
    return obsdetail::g_flight_enabled.load(std::memory_order_relaxed);
}

/// Pre-reserve the rings and start recording. Must run outside parallel
/// regions; all recorder memory is allocated here so recording afterwards
/// is allocation-free. Re-enabling discards previous events.
void flight_enable(const FlightConfig& cfg = {});

/// Stop recording; recorded events stay available for snapshot/export.
void flight_disable();

/// Drop all recorded events, keep buffers and the enabled state.
void flight_reset();

/// Record one event. `category` and `label` must be string literals (only
/// the pointers are stored). Proven `noalloc, noexcept, noclock, det` —
/// the hot-path purity contract every instrumented site relies on.
void flight_record(const char* category, const char* label, double stream_t,
                   double value, double extra = 0.0);

/// Events recorded so far, ordered by global sequence stamp. Oldest
/// wrapped events are gone. Safe to call while disabled.
std::vector<FlightEvent> flight_snapshot();

/// Events lost to ring wrap-around or thread-slot exhaustion.
std::uint64_t flight_dropped_events();

/// JSON of the most recent `tail` events (by sequence stamp):
/// {"dropped":N,"events":[{"seq":..,"tid":..,"category":"..","label":"..",
/// "t":..,"value":..,"extra":..},...]} — consumed by the snapshot export.
std::string flight_to_json(std::size_t tail = 512);

}  // namespace wifisense::common
