// First-party concurrency substrate: a fixed-size thread pool plus
// deterministic parallel-for / parallel-invoke primitives used by the tensor
// kernels, the random forest, the experiment harness, and the simulator.
//
// Determinism contract (see DESIGN.md, "Concurrency model"):
//   - Work is partitioned into *static* chunks whose boundaries depend only
//     on the problem size and the chunk size — never on the thread count or
//     on runtime timing. Each output element is owned by exactly one chunk,
//     so results are bitwise identical at 1, 2, or N threads.
//   - Randomized parallel stages draw per-chunk seeds up front (common/rng.hpp)
//     instead of sharing a stream, so the draw sequence seen by chunk i is a
//     pure function of (seed, i).
//   - Nested parallel calls from inside a pool task run inline on the calling
//     worker; only the outermost region fans out. This keeps cell-level
//     parallelism (experiments) composable with kernel-level parallelism
//     (matmul) without oversubscription or deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

namespace wifisense::common {

/// Process-wide execution configuration. `threads == 0` resolves to
/// std::thread::hardware_concurrency() (min 1).
struct ExecutionConfig {
    std::size_t threads = 0;
};

/// Resolve `cfg.threads` to a concrete positive thread count.
std::size_t resolve_threads(const ExecutionConfig& cfg);

/// Install a new configuration (resizes the shared pool; joins old workers).
/// Safe to call between parallel regions; must not be called from inside one.
void set_execution_config(const ExecutionConfig& cfg);

/// The currently installed configuration (as set, unresolved).
ExecutionConfig execution_config();

/// Resolved thread count the pool is currently sized for.
std::size_t thread_count();

/// Apply the WIFISENSE_THREADS environment variable if present and positive.
/// Returns the resolved thread count in effect afterwards.
std::size_t configure_threads_from_env();

/// True while executing inside a pool task (nested regions run inline).
bool in_parallel_region();

/// Run body(begin, end) over [0, n) split into static chunks of
/// `chunk_size` indices (the last chunk is ragged). Chunk k always covers
/// [k*chunk_size, min(n, (k+1)*chunk_size)) regardless of thread count.
/// Blocks until every chunk completed; rethrows the first task exception.
void parallel_for_chunks(std::size_t n, std::size_t chunk_size,
                         const std::function<void(std::size_t, std::size_t)>& body);

/// Run body(i) for every i in [0, n), grouped into chunks of `grain`
/// consecutive indices per task.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Run a set of independent tasks, one pool slot each. Task index order is
/// stable; tasks must write to disjoint state.
void parallel_invoke(std::span<const std::function<void()>> tasks);

}  // namespace wifisense::common
