// First-party concurrency substrate: a fixed-size thread pool plus
// deterministic parallel-for / parallel-invoke primitives used by the tensor
// kernels, the random forest, the experiment harness, and the simulator.
//
// Determinism contract (see DESIGN.md, "Concurrency model"):
//   - Work is partitioned into *static* chunks whose boundaries depend only
//     on the problem size and the chunk size — never on the thread count or
//     on runtime timing. Each output element is owned by exactly one chunk,
//     so results are bitwise identical at 1, 2, or N threads.
//   - Randomized parallel stages draw per-chunk seeds up front (common/rng.hpp)
//     instead of sharing a stream, so the draw sequence seen by chunk i is a
//     pure function of (seed, i).
//   - Nested parallel calls from inside a pool task run inline on the calling
//     worker; only the outermost region fans out. This keeps cell-level
//     parallelism (experiments) composable with kernel-level parallelism
//     (matmul) without oversubscription or deadlock.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

namespace wifisense::common {

/// Process-wide execution configuration. `threads == 0` resolves to
/// std::thread::hardware_concurrency() (min 1).
struct ExecutionConfig {
    std::size_t threads = 0;
};

/// Resolve `cfg.threads` to a concrete positive thread count.
std::size_t resolve_threads(const ExecutionConfig& cfg);

/// Install a new configuration (resizes the shared pool; joins old workers).
/// Safe to call between parallel regions; must not be called from inside one.
void set_execution_config(const ExecutionConfig& cfg);

/// The currently installed configuration (as set, unresolved).
ExecutionConfig execution_config();

/// Resolved thread count the pool is currently sized for.
std::size_t thread_count();

/// Apply the WIFISENSE_THREADS environment variable if present and positive.
/// Returns the resolved thread count in effect afterwards.
std::size_t configure_threads_from_env();

/// True while executing inside a pool task (nested regions run inline).
bool in_parallel_region();

namespace detail {

/// True when a region of `tasks` tasks would execute on the calling thread
/// without fanning out: nested region, single task, or a one-thread pool.
bool region_runs_inline(std::size_t tasks);

/// RAII marker for inline regions executed by the header fast path below, so
/// nested parallel calls still see "inside a region" and keep the
/// only-the-outermost-region-fans-out rule.
class InlineRegion {
public:
    InlineRegion();
    ~InlineRegion();
    InlineRegion(const InlineRegion&) = delete;
    InlineRegion& operator=(const InlineRegion&) = delete;
};

/// Type-erased fan-out path (the pre-template parallel_for_chunks body).
/// Erasure is a raw function pointer plus an opaque context — not
/// std::function — so entering a parallel region performs zero heap
/// allocations at any thread count (the fleet simulator and the training
/// loop both fan out in their steady state; see DESIGN.md, "Memory model").
void run_chunks_erased(std::size_t n, std::size_t chunk_size,
                       void (*body)(const void* ctx, std::size_t begin,
                                    std::size_t end),
                       const void* ctx);

}  // namespace detail

/// Run body(begin, end) over [0, n) split into static chunks of
/// `chunk_size` indices (the last chunk is ragged). Chunk k always covers
/// [k*chunk_size, min(n, (k+1)*chunk_size)) regardless of thread count.
/// Blocks until every chunk completed; rethrows the first task exception.
///
/// Templated so the hot single-thread / single-chunk / nested paths run the
/// callable directly: no std::function type erasure, hence zero heap
/// allocations (the training and inference loops rely on this — see
/// DESIGN.md, "Memory model"). The chunk decomposition and per-chunk
/// execution order are identical on both paths, so results stay bitwise
/// independent of which path runs.
// wifisense-lint: allow-call(body) the chunk callable is a lambda scanned in place at the enclosing call site; its effects are charged to the function that wrote it
template <class Body>
void parallel_for_chunks(std::size_t n, std::size_t chunk_size, const Body& body) {
    if (n == 0) return;
    if (chunk_size == 0) chunk_size = 1;
    const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
    if (detail::region_runs_inline(chunks)) {
        detail::InlineRegion region;
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t begin = c * chunk_size;
            body(begin, begin + chunk_size < n ? begin + chunk_size : n);
        }
        return;
    }
    // Captureless trampoline: the callable is passed by address, so the
    // fan-out path stays allocation-free (no std::function conversion).
    detail::run_chunks_erased(
        n, chunk_size,
        +[](const void* ctx, std::size_t begin, std::size_t end) {
            (*static_cast<const Body*>(ctx))(begin, end);
        },
        &body);
}

/// Run body(i) for every i in [0, n), grouped into chunks of `grain`
/// consecutive indices per task.
// wifisense-lint: allow-call(body) the per-index callable is a lambda scanned in place at the enclosing call site; its effects are charged to the function that wrote it
template <class Body>
void parallel_for(std::size_t n, const Body& body, std::size_t grain = 1) {
    parallel_for_chunks(n, grain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
    });
}

/// Run a set of independent tasks, one pool slot each. Task index order is
/// stable; tasks must write to disjoint state.
void parallel_invoke(std::span<const std::function<void()>> tasks);

}  // namespace wifisense::common
