// Deterministic fault model for the sensing -> inference pipeline.
//
// The paper's deployment (Nexmon-patched Raspberry Pi receivers in an
// unconstrained office) suffers dropped frames, burst losses while a
// receiver reconnects, saturated/NaN amplitudes, per-subcarrier dropout,
// stalled environmental sensors, and clock skew between the CSI and the
// T/H streams. This header makes those faults first-class, reproducible
// inputs instead of exceptions:
//
//   - every per-packet decision is a pure function of (seed, packet_index)
//     via the splitmix64 substream machinery of common/rng.hpp, so a fault
//     plan is bitwise reproducible at any thread count and never perturbs
//     the world RNG streams it is injected next to;
//   - time-windowed faults (receiver outage bursts, env-sensor stalls) are
//     pure functions of (seed, window_index), queryable statelessly at any
//     timestamp in any order;
//   - an all-zero FaultConfig is inert by construction: the injection hooks
//     in csi::Receiver / envsim::OfficeSimulator compare against the
//     default PacketFault and touch nothing, keeping the zero-fault path
//     bitwise identical to the seed outputs.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace wifisense::common {

struct FaultConfig {
    // -- per-packet iid faults (probabilities in [0, 1]) --------------------
    double frame_drop_rate = 0.0;  ///< packet never reaches the host
    double nan_rate = 0.0;         ///< a subset of amplitudes reads NaN
    double inf_rate = 0.0;         ///< a subset of amplitudes reads +Inf
    double saturate_rate = 0.0;    ///< AGC saturation: frame pinned at full scale
    /// Chance a packet loses a random subset of subcarriers (reported NaN).
    double subcarrier_dropout_rate = 0.0;
    /// Fraction of subcarriers lost by such a packet (at least one).
    double subcarrier_dropout_fraction = 0.15;

    // -- receiver outage bursts (disconnect/reconnect windows) --------------
    double burst_rate_per_h = 0.0;  ///< expected outages per hour
    double burst_len_s = 30.0;      ///< outage duration (clamped to the window)

    // -- environmental-sensor stream faults ---------------------------------
    double env_stall_rate_per_h = 0.0;  ///< expected stalls per hour
    double env_stall_len_s = 120.0;     ///< stall duration (sensor repeats itself)
    /// CSI<->env clock skew: env readings lag the CSI timeline by this much.
    double env_clock_skew_s = 0.0;

    // -- wire-level transport faults (per encoded telemetry frame) ----------
    // Applied by data::LinkEncoder between framing and the byte stream; the
    // decisions are keyed on (link_id, sequence) so every link degrades
    // independently under one plan.
    double wire_corrupt_rate = 0.0;    ///< random bit flips inside a frame
    double wire_truncate_rate = 0.0;   ///< frame cut short mid-stream
    double wire_reorder_rate = 0.0;    ///< frame swapped with its successor
    double wire_duplicate_rate = 0.0;  ///< frame delivered twice

    // -- per-link faults (multi-link telemetry) -----------------------------
    /// Per-link outage windows: the link emits no bytes at all while down.
    double link_outage_rate_per_h = 0.0;
    double link_outage_len_s = 30.0;
    /// Cross-link clock skew ceiling: link l's wire timestamps lag the world
    /// clock by a deterministic per-link amount in [0, link_clock_skew_s].
    double link_clock_skew_s = 0.0;

    // -- phase-stream faults (src/csi/phase.cpp ingest path) ----------------
    /// Chance a packet's CFR picks up a random constant phase jump (CFO
    /// glitch) and/or per-subcarrier phase noise (PLL jitter). Amplitudes are
    /// invariant to a pure rotation, so these only reach the amplitude
    /// pipeline through the additive receiver noise that follows them.
    double phase_jump_rate = 0.0;
    double phase_jump_max_rad = 3.14159265358979323846;
    double phase_noise_rate = 0.0;
    double phase_noise_sigma_rad = 0.2;

    std::uint64_t seed = 0x5eed;

    /// True if any fault channel can fire.
    bool any_active() const;

    /// Copy with every stochastic rate multiplied by `factor` (clamped to
    /// [0,1] for probabilities). Durations and skew are kept; factor 0 is
    /// the inert plan. Bench sweeps use this to trace accuracy vs fault rate.
    FaultConfig scaled(double factor) const;
};

enum class CorruptKind : std::uint8_t { kNone = 0, kNaN, kInf, kSaturate };

/// The fault decision for one packet. Default-constructed == no fault.
struct PacketFault {
    bool dropped = false;
    CorruptKind corrupt = CorruptKind::kNone;
    /// Seeds the per-subcarrier mask of a kNaN/kInf corruption (nonzero iff
    /// corrupt is one of those kinds).
    std::uint64_t corrupt_mask_seed = 0;
    /// Nonzero => this packet loses subcarriers; the value seeds the mask.
    std::uint64_t dropout_mask_seed = 0;

    bool any() const {
        return dropped || corrupt != CorruptKind::kNone || dropout_mask_seed != 0;
    }
};

/// The wire-transport fault decision for one encoded telemetry frame.
/// Default-constructed == the frame passes through untouched.
struct WireFault {
    bool corrupt = false;    ///< flip a seeded handful of payload bits
    bool truncate = false;   ///< emit only a seeded prefix of the frame
    bool duplicate = false;  ///< emit the frame twice
    bool reorder = false;    ///< swap the frame with its successor
    /// Seeds the corruption offsets / truncation point (nonzero iff corrupt
    /// or truncate fired).
    std::uint64_t byte_seed = 0;

    bool any() const { return corrupt || truncate || duplicate || reorder; }
};

/// The phase-stream fault decision for one packet's CFR. Default == clean.
struct PhaseFault {
    double jump_rad = 0.0;           ///< constant rotation over all subcarriers
    std::uint64_t noise_seed = 0;    ///< nonzero => per-subcarrier phase noise
    double noise_sigma_rad = 0.0;    ///< std-dev of that per-subcarrier noise

    bool any() const { return jump_rad != 0.0 || noise_seed != 0; }
};

/// Stateless, seeded description of every fault the pipeline will see.
/// All queries are pure and safe to call concurrently.
class FaultPlan {
public:
    /// Inactive plan (every query reports "no fault").
    FaultPlan() = default;
    explicit FaultPlan(FaultConfig cfg);

    bool active() const { return active_; }
    const FaultConfig& config() const { return cfg_; }

    /// Fault decision for the packet_index-th CSI packet of the stream.
    PacketFault packet_fault(std::uint64_t packet_index) const;

    /// True while a receiver outage burst covers timestamp `t`.
    bool csi_offline(double t) const;

    /// True while the environmental sensor is stalled at timestamp `t`.
    bool env_stalled(double t) const;

    /// Constant env-behind-CSI clock skew in seconds (>= 0).
    double env_skew_s() const { return active_ ? cfg_.env_clock_skew_s : 0.0; }

    /// Wire-transport fault for frame `sequence` of link `link_id`. Keyed on
    /// (seed, link, sequence): links degrade independently, and the same
    /// frame always sees the same fate.
    WireFault wire_fault(std::uint8_t link_id, std::uint64_t sequence) const;

    /// True while a per-link outage window covers timestamp `t` on `link_id`
    /// (the link emits nothing at all; cf. csi_offline for the paper's
    /// single-receiver bursts).
    bool link_offline(std::uint8_t link_id, double t) const;

    /// Deterministic per-link clock skew in [0, link_clock_skew_s]; link 0 is
    /// the reference clock and never skews.
    double link_skew_s(std::uint8_t link_id) const;

    /// Phase-stream fault for the packet_index-th packet (salted by link so
    /// each receiver's oscillator glitches independently).
    PhaseFault phase_fault(std::uint64_t packet_index,
                           std::uint8_t link_id = 0) const;

private:
    bool window_fault_active(double t, std::uint64_t salt, double rate_per_h,
                             double len_s) const;

    FaultConfig cfg_;
    bool active_ = false;
};

/// Apply a packet fault to an amplitude vector in place (pure; `full_scale`
/// is the receiver's saturation amplitude, `dropout_fraction` the share of
/// subcarriers a dropout fault loses). Dropped-out / NaN / Inf subcarriers
/// overwrite their slots; downstream ingest must validate.
void apply_packet_fault(std::span<float> amps, const PacketFault& fault,
                        double full_scale, double dropout_fraction = 0.15);

/// Rotate a CFR in place per a phase fault: the constant jump plus seeded
/// per-subcarrier Gaussian phase noise. Pure — the noise stream is derived
/// from the fault's own seed, never from a shared RNG. |H[k]| is unchanged
/// by construction (rotations preserve magnitude); csi::sanitize_phase
/// removes the constant term downstream.
void apply_phase_fault(std::span<std::complex<double>> cfr,
                       const PhaseFault& fault);

/// Parse a "key=value,key=value" fault-plan spec, e.g.
///   "drop=0.05,nan=0.01,dropout=0.02,burst_rate=0.5,burst_len=45,
///    env_stall_rate=0.3,env_stall_len=120,skew=1.5,seed=99"
/// Keys: drop, nan, inf, saturate, dropout, dropout_fraction, burst_rate,
/// burst_len, env_stall_rate, env_stall_len, skew, seed, plus the wire /
/// multi-link / phase families: wire_corrupt, wire_truncate, wire_reorder,
/// wire_duplicate, link_outage_rate, link_outage_len, link_skew, phase_jump,
/// phase_jump_max, phase_noise, phase_noise_sigma. Unknown keys and
/// out-of-range values produce kInvalidArgument.
[[nodiscard]] Result<FaultConfig> parse_fault_spec(std::string_view spec);

/// Render a config back to the spec format (diagnostics, bench metadata).
std::string to_spec(const FaultConfig& cfg);

}  // namespace wifisense::common
