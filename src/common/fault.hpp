// Deterministic fault model for the sensing -> inference pipeline.
//
// The paper's deployment (Nexmon-patched Raspberry Pi receivers in an
// unconstrained office) suffers dropped frames, burst losses while a
// receiver reconnects, saturated/NaN amplitudes, per-subcarrier dropout,
// stalled environmental sensors, and clock skew between the CSI and the
// T/H streams. This header makes those faults first-class, reproducible
// inputs instead of exceptions:
//
//   - every per-packet decision is a pure function of (seed, packet_index)
//     via the splitmix64 substream machinery of common/rng.hpp, so a fault
//     plan is bitwise reproducible at any thread count and never perturbs
//     the world RNG streams it is injected next to;
//   - time-windowed faults (receiver outage bursts, env-sensor stalls) are
//     pure functions of (seed, window_index), queryable statelessly at any
//     timestamp in any order;
//   - an all-zero FaultConfig is inert by construction: the injection hooks
//     in csi::Receiver / envsim::OfficeSimulator compare against the
//     default PacketFault and touch nothing, keeping the zero-fault path
//     bitwise identical to the seed outputs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace wifisense::common {

struct FaultConfig {
    // -- per-packet iid faults (probabilities in [0, 1]) --------------------
    double frame_drop_rate = 0.0;  ///< packet never reaches the host
    double nan_rate = 0.0;         ///< a subset of amplitudes reads NaN
    double inf_rate = 0.0;         ///< a subset of amplitudes reads +Inf
    double saturate_rate = 0.0;    ///< AGC saturation: frame pinned at full scale
    /// Chance a packet loses a random subset of subcarriers (reported NaN).
    double subcarrier_dropout_rate = 0.0;
    /// Fraction of subcarriers lost by such a packet (at least one).
    double subcarrier_dropout_fraction = 0.15;

    // -- receiver outage bursts (disconnect/reconnect windows) --------------
    double burst_rate_per_h = 0.0;  ///< expected outages per hour
    double burst_len_s = 30.0;      ///< outage duration (clamped to the window)

    // -- environmental-sensor stream faults ---------------------------------
    double env_stall_rate_per_h = 0.0;  ///< expected stalls per hour
    double env_stall_len_s = 120.0;     ///< stall duration (sensor repeats itself)
    /// CSI<->env clock skew: env readings lag the CSI timeline by this much.
    double env_clock_skew_s = 0.0;

    std::uint64_t seed = 0x5eed;

    /// True if any fault channel can fire.
    bool any_active() const;

    /// Copy with every stochastic rate multiplied by `factor` (clamped to
    /// [0,1] for probabilities). Durations and skew are kept; factor 0 is
    /// the inert plan. Bench sweeps use this to trace accuracy vs fault rate.
    FaultConfig scaled(double factor) const;
};

enum class CorruptKind : std::uint8_t { kNone = 0, kNaN, kInf, kSaturate };

/// The fault decision for one packet. Default-constructed == no fault.
struct PacketFault {
    bool dropped = false;
    CorruptKind corrupt = CorruptKind::kNone;
    /// Seeds the per-subcarrier mask of a kNaN/kInf corruption (nonzero iff
    /// corrupt is one of those kinds).
    std::uint64_t corrupt_mask_seed = 0;
    /// Nonzero => this packet loses subcarriers; the value seeds the mask.
    std::uint64_t dropout_mask_seed = 0;

    bool any() const {
        return dropped || corrupt != CorruptKind::kNone || dropout_mask_seed != 0;
    }
};

/// Stateless, seeded description of every fault the pipeline will see.
/// All queries are pure and safe to call concurrently.
class FaultPlan {
public:
    /// Inactive plan (every query reports "no fault").
    FaultPlan() = default;
    explicit FaultPlan(FaultConfig cfg);

    bool active() const { return active_; }
    const FaultConfig& config() const { return cfg_; }

    /// Fault decision for the packet_index-th CSI packet of the stream.
    PacketFault packet_fault(std::uint64_t packet_index) const;

    /// True while a receiver outage burst covers timestamp `t`.
    bool csi_offline(double t) const;

    /// True while the environmental sensor is stalled at timestamp `t`.
    bool env_stalled(double t) const;

    /// Constant env-behind-CSI clock skew in seconds (>= 0).
    double env_skew_s() const { return active_ ? cfg_.env_clock_skew_s : 0.0; }

private:
    bool window_fault_active(double t, std::uint64_t salt, double rate_per_h,
                             double len_s) const;

    FaultConfig cfg_;
    bool active_ = false;
};

/// Apply a packet fault to an amplitude vector in place (pure; `full_scale`
/// is the receiver's saturation amplitude, `dropout_fraction` the share of
/// subcarriers a dropout fault loses). Dropped-out / NaN / Inf subcarriers
/// overwrite their slots; downstream ingest must validate.
void apply_packet_fault(std::span<float> amps, const PacketFault& fault,
                        double full_scale, double dropout_fraction = 0.15);

/// Parse a "key=value,key=value" fault-plan spec, e.g.
///   "drop=0.05,nan=0.01,dropout=0.02,burst_rate=0.5,burst_len=45,
///    env_stall_rate=0.3,env_stall_len=120,skew=1.5,seed=99"
/// Keys: drop, nan, inf, saturate, dropout, dropout_fraction, burst_rate,
/// burst_len, env_stall_rate, env_stall_len, skew, seed. Unknown keys and
/// out-of-range values produce kInvalidArgument.
[[nodiscard]] Result<FaultConfig> parse_fault_spec(std::string_view spec);

/// Render a config back to the spec format (diagnostics, bench metadata).
std::string to_spec(const FaultConfig& cfg);

}  // namespace wifisense::common
