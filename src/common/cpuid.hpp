// CPU feature detection for the runtime kernel dispatch (DESIGN.md §16).
//
// The SIMD microkernels in src/nn/kernels/ are compiled unconditionally on
// x86-64 (each backend translation unit carries its own -m flags) and
// selected at startup by querying CPUID, so one binary runs correctly on any
// host: a machine without AVX2 simply never calls into the AVX2 backend.
#pragma once

#include <string>

namespace wifisense::common {

/// Instruction-set extensions relevant to the kernel backends. All fields
/// are false on non-x86 builds (the query compiles to a constant).
struct CpuFeatures {
    bool sse42 = false;
    bool avx = false;
    bool avx2 = false;
    bool fma = false;
};

/// Query the hardware once; subsequent calls return the cached result.
const CpuFeatures& cpu_features();

/// Space-separated list of the detected features ("sse4.2 avx avx2 fma"),
/// or "baseline" when none apply — recorded in bench JSON so perf trends
/// are attributable to the host that produced them.
std::string cpu_feature_string();

}  // namespace wifisense::common
