// Counting replacements for the global allocation functions. The counters
// and the operators live in one translation unit so that referencing
// allocation_count() links the operators in too (static-library semantics:
// unreferenced object files are dropped).
#include "common/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace wifisense::alloc {

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};

void* counted_alloc(std::size_t size) noexcept {
    void* p = std::malloc(size ? size : 1);
    if (p != nullptr) g_allocs.fetch_add(1, std::memory_order_relaxed);
    return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t padded = (size + align - 1) / align * align;
    void* p = std::aligned_alloc(align, padded ? padded : align);
    if (p != nullptr) g_allocs.fetch_add(1, std::memory_order_relaxed);
    return p;
}

void counted_free(void* p) noexcept {
    if (p == nullptr) return;
    g_deallocs.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}
}  // namespace

std::uint64_t allocation_count() {
    return g_allocs.load(std::memory_order_relaxed);
}

std::uint64_t deallocation_count() {
    return g_deallocs.load(std::memory_order_relaxed);
}

}  // namespace wifisense::alloc

// --- global operator new/delete replacements -------------------------------

void* operator new(std::size_t size) {
    void* p = wifisense::alloc::counted_alloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size) {
    void* p = wifisense::alloc::counted_alloc(size);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return wifisense::alloc::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return wifisense::alloc::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
    void* p = wifisense::alloc::counted_aligned_alloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
    void* p = wifisense::alloc::counted_aligned_alloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
    return wifisense::alloc::counted_aligned_alloc(
        size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
    return wifisense::alloc::counted_aligned_alloc(
        size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { wifisense::alloc::counted_free(p); }
void operator delete[](void* p) noexcept { wifisense::alloc::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
    wifisense::alloc::counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
    wifisense::alloc::counted_free(p);
}
