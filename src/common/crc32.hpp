// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check shared by every framed binary format in the tree: the nn/serialize
// model containers (v2 float, v3 int8) and the data/telemetry wire frames.
// One implementation keeps the formats bit-compatible with each other and
// with standard tooling (zlib's crc32, Python's binascii).
#pragma once

#include <cstddef>
#include <cstdint>

namespace wifisense::common {

/// CRC-32 of `n` bytes. Table-driven, allocation-free, safe to call
/// concurrently (the table is built once at first use).
std::uint32_t crc32(const void* data, std::size_t n);

/// Streaming form: continue a running CRC (start from crc32_init(), finish
/// with crc32_final()). crc32(p, n) == crc32_final(crc32_update(crc32_init(),
/// p, n)).
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, const void* data, std::size_t n);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace wifisense::common
