#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/metrics.hpp"
#include "common/telemetry/flight_recorder.hpp"

namespace wifisense::common {

std::uint64_t trace_now_ns() {
    // The tree's single sanctioned monotonic clock read (this file is exempt
    // from det.clock / obs.raw-clock — see tools/lint/wifisense_lint.cpp).
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double trace_seconds_since(std::uint64_t start_ns) {
    const std::uint64_t now = trace_now_ns();
    return now >= start_ns ? static_cast<double>(now - start_ns) * 1e-9 : 0.0;
}

#if WIFISENSE_TRACE_COMPILED

namespace obsdetail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace obsdetail

namespace {

std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v && p < (std::size_t{1} << 30)) p <<= 1;
    return p;
}

/// One thread's event storage: a fixed-capacity ring indexed by a monotonic
/// head counter. `slots` is sized once at enable time; recording writes
/// slots[head & mask] and never allocates.
struct ThreadRing {
    std::vector<TraceEvent> slots;
    std::uint64_t head = 0;     ///< total events ever written to this ring
    std::uint64_t seen = 0;     ///< events offered (sampling counter)
    std::uint64_t skipped = 0;  ///< events sampled out (policy, not loss)
};

/// All tracing state of one enable() session. Guarded informally: enable /
/// reset / snapshot must run outside parallel regions (documented contract);
/// recording itself is wait-free per thread.
struct TraceState {
    std::size_t capacity = 0;      ///< power of two
    std::size_t sample_every = 1;  ///< record every N-th event per thread
    std::vector<ThreadRing> rings;
    std::atomic<std::size_t> next_slot{0};
    std::atomic<std::uint64_t> slot_overflow{0};
};

TraceState& state() {
    static TraceState s;
    return s;
}

/// Bumped on every enable()/reset() so threads re-acquire their slot.
std::atomic<std::uint64_t> g_epoch{0};

struct TlSlot {
    std::uint64_t epoch = 0;
    ThreadRing* ring = nullptr;
};
thread_local TlSlot tl_slot;

/// The calling thread's ring for the current session, acquiring a slot on
/// first use (atomic increment into the pre-reserved table — no allocation).
ThreadRing* local_ring() {
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (tl_slot.epoch != epoch) {
        tl_slot.epoch = epoch;
        TraceState& s = state();
        const std::size_t idx = s.next_slot.fetch_add(1, std::memory_order_relaxed);
        if (idx < s.rings.size()) {
            tl_slot.ring = &s.rings[idx];
        } else {
            tl_slot.ring = nullptr;
            s.slot_overflow.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return tl_slot.ring;
}

void record_event(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                  bool instant) {
    if (!obsdetail::g_trace_enabled.load(std::memory_order_relaxed)) return;
    ThreadRing* ring = local_ring();
    if (ring == nullptr) return;
    TraceState& s = state();
    // 1-in-N sampling: each thread keeps the first of every `sample_every`
    // events it offers (per-thread counter — no cross-thread coordination).
    if (s.sample_every > 1 && (ring->seen++ % s.sample_every) != 0) {
        ++ring->skipped;
        return;
    }
    TraceEvent& e = ring->slots[ring->head & (s.capacity - 1)];
    e.name = name;
    e.start_ns = start_ns;
    e.end_ns = end_ns;
    e.tid = static_cast<std::uint32_t>(ring - s.rings.data());
    e.instant = instant;
    ++ring->head;
}

void append_json_escaped(std::string& out, const char* text) {
    for (const char* p = text; *p != '\0'; ++p) {
        const char c = *p;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

}  // namespace

namespace obsdetail {

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) {
    record_event(name, start_ns, end_ns, /*instant=*/false);
}

void record_instant(const char* name, std::uint64_t t_ns) {
    record_event(name, t_ns, t_ns, /*instant=*/true);
}

}  // namespace obsdetail

void trace_enable(const TraceConfig& cfg) {
    TraceState& s = state();
    obsdetail::g_trace_enabled.store(false, std::memory_order_relaxed);
    s.capacity = round_up_pow2(std::max<std::size_t>(cfg.events_per_thread, 64));
    s.sample_every = std::max<std::size_t>(cfg.sample_every, 1);
    const std::size_t threads = std::max<std::size_t>(cfg.max_threads, 1);
    s.rings.assign(threads, ThreadRing{});
    for (ThreadRing& r : s.rings) r.slots.assign(s.capacity, TraceEvent{});
    s.next_slot.store(0, std::memory_order_relaxed);
    s.slot_overflow.store(0, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_release);
    obsdetail::g_trace_enabled.store(true, std::memory_order_release);
}

void trace_disable() {
    obsdetail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void trace_reset() {
    TraceState& s = state();
    const bool was_enabled =
        obsdetail::g_trace_enabled.load(std::memory_order_relaxed);
    obsdetail::g_trace_enabled.store(false, std::memory_order_relaxed);
    for (ThreadRing& r : s.rings) {
        r.head = 0;
        r.seen = 0;
        r.skipped = 0;
    }
    s.next_slot.store(0, std::memory_order_relaxed);
    s.slot_overflow.store(0, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_release);
    obsdetail::g_trace_enabled.store(was_enabled, std::memory_order_release);
}

std::vector<TraceEvent> trace_snapshot() {
    TraceState& s = state();
    std::vector<TraceEvent> out;
    if (s.capacity == 0) return out;
    for (const ThreadRing& r : s.rings) {
        const std::uint64_t kept = std::min<std::uint64_t>(r.head, s.capacity);
        const std::uint64_t first = r.head - kept;
        for (std::uint64_t i = first; i < r.head; ++i)
            out.push_back(r.slots[i & (s.capacity - 1)]);
    }
    return out;
}

std::uint64_t trace_dropped_events() {
    TraceState& s = state();
    std::uint64_t dropped = s.slot_overflow.load(std::memory_order_relaxed);
    for (const ThreadRing& r : s.rings)
        if (r.head > s.capacity) dropped += r.head - s.capacity;
    return dropped;
}

std::uint64_t trace_sampled_out() {
    TraceState& s = state();
    std::uint64_t skipped = 0;
    for (const ThreadRing& r : s.rings) skipped += r.skipped;
    return skipped;
}

std::string trace_to_chrome_json() {
    std::vector<TraceEvent> events = trace_snapshot();
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.end_ns > b.end_ns;  // parents before children
              });

    std::string out = "{\"traceEvents\":[";
    char buf[160];
    bool first = true;
    std::uint32_t max_tid = 0;
    for (const TraceEvent& e : events) {
        max_tid = std::max(max_tid, e.tid);
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"";
        append_json_escaped(out, e.name);
        if (e.instant) {
            std::snprintf(buf, sizeof buf,
                          "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%u,"
                          "\"ts\":%.3f}",
                          e.tid, static_cast<double>(e.start_ns) * 1e-3);
        } else {
            std::snprintf(buf, sizeof buf,
                          "\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                          "\"dur\":%.3f}",
                          e.tid, static_cast<double>(e.start_ns) * 1e-3,
                          static_cast<double>(e.end_ns - e.start_ns) * 1e-3);
        }
        out += buf;
    }
    for (std::uint32_t tid = 0; !events.empty() && tid <= max_tid; ++tid) {
        std::snprintf(buf, sizeof buf,
                      ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"tid\":%u,\"args\":{\"name\":\"slot-%u\"}}",
                      tid, tid);
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

#else  // WIFISENSE_TRACE_COMPILED == 0

namespace obsdetail {
void record_span(const char*, std::uint64_t, std::uint64_t) {}
void record_instant(const char*, std::uint64_t) {}
}  // namespace obsdetail

void trace_enable(const TraceConfig&) {}
void trace_disable() {}
void trace_reset() {}
std::vector<TraceEvent> trace_snapshot() { return {}; }
std::uint64_t trace_dropped_events() { return 0; }
std::uint64_t trace_sampled_out() { return 0; }
std::string trace_to_chrome_json() {
    return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n";
}

#endif  // WIFISENSE_TRACE_COMPILED

[[nodiscard]] Status write_chrome_trace(const std::string& path) {
    const std::string json = trace_to_chrome_json();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError,
                      "write_chrome_trace: cannot open " + path);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size())
        return Status(StatusCode::kIoError,
                      "write_chrome_trace: short write to " + path);
    return Status::ok();
}

ObservabilityEnv configure_observability_from_env() {
    ObservabilityEnv env;
    const auto parse = [](const char* value, bool* enabled, std::string* path) {
        if (value == nullptr || value[0] == '\0') return;
        if (std::string_view(value) == "0") return;
        *enabled = true;
        if (std::string_view(value) != "1") *path = value;
    };
    parse(std::getenv("WIFISENSE_TRACE"), &env.trace, &env.trace_path);
    parse(std::getenv("WIFISENSE_METRICS"), &env.metrics, &env.metrics_path);
    parse(std::getenv("WIFISENSE_SNAPSHOT"), &env.snapshot, &env.snapshot_path);
    if (const char* sample = std::getenv("WIFISENSE_TRACE_SAMPLE")) {
        const long v = std::atol(sample);
        if (v > 1) env.trace_sample_every = static_cast<std::size_t>(v);
    }
    if (env.trace) {
        TraceConfig cfg;
        cfg.sample_every = env.trace_sample_every;
        trace_enable(cfg);
    }
    if (env.metrics) metrics_enable();
    if (env.snapshot) {
        // A snapshot is only useful with live instruments, so arming it arms
        // the metric registry and the flight recorder too.
        metrics_enable();
        flight_enable();
    }
    return env;
}

}  // namespace wifisense::common
