// Lightweight Status / Result<T> error taxonomy for the load/ingest paths.
//
// The dataset and checkpoint readers historically threw std::runtime_error
// for every failure mode, which makes "file is truncated" indistinguishable
// from "wrong format version" without string matching. The typed core lives
// here (common is the dependency root, so data/, nn/ and core/ can all share
// one taxonomy); the historical throwing entry points remain as thin
// wrappers over the Result-returning ones.
//
// Header-only on purpose: Status is used by leaf libraries that do not link
// wifisense_common's compiled objects.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace wifisense::common {

enum class StatusCode {
    kOk = 0,
    kInvalidArgument,  ///< caller error: bad parameter / spec
    kNotFound,         ///< file or resource missing / unopenable
    kFormatMismatch,   ///< wrong magic, header, or unsupported version
    kCorruptData,      ///< payload fails validation (NaN rows, bad checksum)
    kTruncated,        ///< stream ended before the declared payload
    kIoError,          ///< read/write failure on an open stream
};

inline const char* to_string(StatusCode code) {
    switch (code) {
        case StatusCode::kOk: return "ok";
        case StatusCode::kInvalidArgument: return "invalid argument";
        case StatusCode::kNotFound: return "not found";
        case StatusCode::kFormatMismatch: return "format mismatch";
        case StatusCode::kCorruptData: return "corrupt data";
        case StatusCode::kTruncated: return "truncated";
        case StatusCode::kIoError: return "i/o error";
    }
    return "unknown";
}

class [[nodiscard]] Status {
public:
    Status() = default;  // ok
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    [[nodiscard]] static Status ok() { return Status(); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /// "corrupt data: read_csv: foo.csv:17: ..." rendering.
    std::string to_string() const {
        if (is_ok()) return "ok";
        return std::string(common::to_string(code_)) + ": " + message_;
    }

    /// Bridge to the historical throwing APIs.
    void throw_if_error() const {
        if (!is_ok()) throw std::runtime_error(message_);
    }

private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/// Either a value or an error Status. Minimal expected<T, Status>: the load
/// paths need exactly "did it parse, and if not, why" — nothing more.
template <class T>
class [[nodiscard]] Result {
public:
    Result(T value) : value_(std::move(value)) {}                 // NOLINT
    Result(Status status) : status_(std::move(status)) {          // NOLINT
        if (status_.is_ok())
            status_ = Status(StatusCode::kIoError,
                             "Result: constructed from an ok Status");
    }
    Result(StatusCode code, std::string message)
        : status_(code, std::move(message)) {}

    bool is_ok() const { return value_.has_value(); }
    explicit operator bool() const { return is_ok(); }

    const Status& status() const { return status_; }

    /// Throws std::runtime_error(status().message()) on error.
    T& value() & {
        status_.throw_if_error();
        return *value_;
    }
    const T& value() const& {
        status_.throw_if_error();
        return *value_;
    }
    T&& value() && {
        status_.throw_if_error();
        return std::move(*value_);
    }

private:
    Status status_;
    std::optional<T> value_;
};

}  // namespace wifisense::common
