#include "common/crc32.hpp"

#include <array>

namespace wifisense::common {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const void* data, std::size_t n) {
    const auto& table = crc_table();
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i)
        state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
    return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(const void* data, std::size_t n) {
    return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace wifisense::common
