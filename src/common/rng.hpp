// Deterministic RNG sub-streams for parallel stages.
//
// A parallel stage that needs randomness must not share one engine across
// chunks (the draw interleaving would depend on scheduling). Instead the
// stage derives one seed per chunk/item up front via splitmix64 — the draw
// sequence inside chunk i is then a pure function of (seed, i), independent
// of thread count and execution order.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace wifisense::common {

/// splitmix64 finalizer (Steele et al.): bijective 64-bit mix with good
/// avalanche, the standard way to expand one seed into many.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Seed of sub-stream `stream` of a root `seed`.
constexpr std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t stream) {
    return splitmix64(seed ^ splitmix64(stream));
}

/// Engine seeded for sub-stream `stream` of `seed`.
inline std::mt19937_64 substream(std::uint64_t seed, std::uint64_t stream) {
    return std::mt19937_64(substream_seed(seed, stream));
}

/// The first `n` sub-stream seeds of `seed`, e.g. one per forest tree.
inline std::vector<std::uint64_t> substream_seeds(std::uint64_t seed, std::size_t n) {
    std::vector<std::uint64_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = substream_seed(seed, i);
    return out;
}

}  // namespace wifisense::common
