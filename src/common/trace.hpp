// Zero-overhead scoped tracing + the sanctioned wall-clock source.
//
// The repo's determinism contract bans raw clock reads everywhere outside
// data/simtime (the lint rules det.clock / obs.raw-clock enforce it). This
// module is the one sanctioned exception: `trace_now_ns()` is the only
// monotonic clock the tree may read, so every timing number — bench wall
// clocks, span durations, latency histograms — flows through a single
// lint-visible choke point that is guaranteed to never influence computed
// outputs.
//
// On top of the clock sits a compile-time- and runtime-gated span recorder
// (see DESIGN.md §14):
//
//   - `TraceScope s("train.step");` records a begin/end pair into a
//     pre-reserved per-thread ring buffer. Disabled cost: one relaxed atomic
//     load and a branch — no clock read, no allocation, safe inside the
//     noalloc lint regions of the training hot path.
//   - Ring buffers (and the thread-slot table) are sized once at
//     trace_enable() time; recording a span is a clock read plus a slot
//     write. A full ring wraps (oldest events are dropped and counted),
//     never grows.
//   - Span names must be string literals (or otherwise outlive the trace
//     session): only the pointer is stored.
//   - Worker threads of the common/parallel.hpp pool record their chunk
//     spans on their own slots, so nested instrumentation (e.g. matmul
//     inside a training step) lands on the thread that ran it and nests
//     correctly in the Chrome trace viewer.
//   - Tracing is observational by construction: nothing downstream reads a
//     recorded event or the clock into a computation, so enabling it cannot
//     perturb bitwise outputs (tests/test_observability.cpp pins this with
//     the golden training values at 1/2/8 threads).
//
// Export is Chrome-trace JSON ("traceEvents" complete events), loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Building with -DWIFISENSE_TRACE_COMPILED=0 (CMake: -DWIFISENSE_TRACING=OFF)
// compiles every recording call down to nothing; the clock itself stays
// available (benches always need it).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

#ifndef WIFISENSE_TRACE_COMPILED
#define WIFISENSE_TRACE_COMPILED 1
#endif

namespace wifisense::common {

/// Monotonic nanoseconds since an arbitrary epoch — the tree's only
/// sanctioned wall-clock read (see file comment). Always available, even
/// when tracing is compiled out or disabled.
std::uint64_t trace_now_ns();

/// Seconds elapsed since a `trace_now_ns()` reading.
double trace_seconds_since(std::uint64_t start_ns);

struct TraceConfig {
    /// Ring capacity per thread slot, rounded up to a power of two. A full
    /// ring wraps: the oldest events are dropped (and counted), recording
    /// never allocates or blocks.
    std::size_t events_per_thread = std::size_t{1} << 15;
    /// Thread slots pre-reserved at enable time. Threads beyond this record
    /// nothing (counted in trace_dropped_events()).
    std::size_t max_threads = 64;
    /// Record only every N-th event per thread (1 = record everything).
    /// Fleet-scale soaks emit millions of sim.event/sim.tick spans; sampling
    /// keeps a long run's rings from wrapping while preserving the shape of
    /// the profile. Sampled-out events are counted by trace_sampled_out(),
    /// not by trace_dropped_events() (they were skipped by policy, not lost).
    std::size_t sample_every = 1;
};

/// One recorded event. `tid` is the recording thread's slot index (stable
/// for the lifetime of the thread within one enable() session).
struct TraceEvent {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;  ///< == start_ns for instant events
    std::uint32_t tid = 0;
    bool instant = false;
};

/// Pre-reserve the ring buffers and start recording. Must be called outside
/// any parallel region; allocates all tracing memory up front so that
/// recording afterwards is allocation-free. Re-enabling discards previously
/// recorded events.
void trace_enable(const TraceConfig& cfg = {});

/// Stop recording. Already-recorded events are kept for snapshot/export.
void trace_disable();

/// Drop all recorded events but keep the buffers and the enabled state.
void trace_reset();

/// Events recorded so far, ordered by (slot, record order). Oldest wrapped
/// events are gone. Safe to call while disabled.
std::vector<TraceEvent> trace_snapshot();

/// Events lost to ring wrap-around or thread-slot exhaustion.
std::uint64_t trace_dropped_events();

/// Events skipped by the 1-in-N sampling policy (TraceConfig::sample_every).
std::uint64_t trace_sampled_out();

/// Chrome-trace JSON ("traceEvents" array of "X"/"i" events plus thread
/// metadata), ready for chrome://tracing or Perfetto.
std::string trace_to_chrome_json();

/// Write trace_to_chrome_json() to `path`.
[[nodiscard]] Status write_chrome_trace(const std::string& path);

namespace obsdetail {

#if WIFISENSE_TRACE_COMPILED
extern std::atomic<bool> g_trace_enabled;
#endif

void record_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns);
void record_instant(const char* name, std::uint64_t t_ns);

}  // namespace obsdetail

#if WIFISENSE_TRACE_COMPILED

/// True while span recording is live. The relaxed load is the entire
/// disabled-path cost of a TraceScope.
inline bool trace_enabled() {
    return obsdetail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// RAII span: construction stamps the start, destruction stamps the end and
/// writes one slot of the calling thread's ring. `name` must outlive the
/// trace session (use string literals).
class TraceScope {
public:
    explicit TraceScope(const char* name) {
        if (trace_enabled()) {
            name_ = name;
            start_ns_ = trace_now_ns();
        }
    }
    ~TraceScope() {
        if (name_ != nullptr)
            obsdetail::record_span(name_, start_ns_, trace_now_ns());
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    const char* name_ = nullptr;
    std::uint64_t start_ns_ = 0;
};

/// Zero-duration marker event (state transitions, one-off occurrences).
inline void trace_instant(const char* name) {
    if (trace_enabled()) obsdetail::record_instant(name, trace_now_ns());
}

#else  // WIFISENSE_TRACE_COMPILED == 0: recording compiles to nothing.

inline bool trace_enabled() { return false; }

class TraceScope {
public:
    explicit TraceScope(const char*) {}
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;
};

inline void trace_instant(const char*) {}

#endif  // WIFISENSE_TRACE_COMPILED

/// What configure_observability_from_env() found and enabled.
struct ObservabilityEnv {
    bool trace = false;           ///< tracing enabled via WIFISENSE_TRACE
    std::string trace_path;       ///< output path ("" = in-memory only)
    bool metrics = false;         ///< metrics enabled via WIFISENSE_METRICS
    std::string metrics_path;     ///< output path ("" = embed in reports only)
    bool snapshot = false;        ///< snapshot armed via WIFISENSE_SNAPSHOT
    std::string snapshot_path;    ///< telemetry_snapshot output path
    std::size_t trace_sample_every = 1;  ///< WIFISENSE_TRACE_SAMPLE (1-in-N)
};

/// Apply the WIFISENSE_TRACE / WIFISENSE_METRICS environment variables,
/// mirroring WIFISENSE_THREADS:
///   WIFISENSE_TRACE=trace.json    enable tracing, export to trace.json
///   WIFISENSE_TRACE=1             enable tracing, keep events in memory
///   WIFISENSE_TRACE_SAMPLE=N      record only every N-th span per thread
///   WIFISENSE_METRICS=metrics.json / =1   likewise for the metric registry
///   WIFISENSE_SNAPSHOT=snap.json  arm metrics + the flight recorder and
///                                 request a telemetry snapshot at snap.json
///                                 (harness writes it at exit; =1 arms only)
/// Unset, empty, or "0" leaves the corresponding subsystem untouched.
ObservabilityEnv configure_observability_from_env();

}  // namespace wifisense::common
