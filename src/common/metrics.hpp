// Runtime-gated metric registry: counters, gauges, and fixed-bucket
// histograms for the observability layer (DESIGN.md §14).
//
// Design constraints, shared with common/trace.hpp:
//
//   - Disabled cost is one relaxed atomic load and a branch per recording
//     call — no allocation, no locking — so instrumented hot paths stay
//     inside their noalloc lint regions.
//   - Instrument *creation* (obs_counter / obs_gauge / obs_histogram) takes
//     a registry lock and may allocate; call sites hoist the returned
//     reference out of their hot loops (typically a function-local static
//     or a one-time lookup at function entry). Handles are stable for the
//     process lifetime.
//   - Recording is an atomic add / store: deterministic totals at any
//     thread count (counters are sums; histograms are per-bucket sums),
//     never an influence on computed outputs.
//   - Histograms have fixed bucket edges set at creation; counts are
//     pre-sized, so observe() never allocates.
//
// Export is a compact JSON object (counters / gauges / histograms, sorted
// by name) embedded into BENCH_<name>.json by bench::BenchReport and
// writable standalone via write_metrics_json().
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/trace.hpp"  // WIFISENSE_TRACE_COMPILED gate

namespace wifisense::common {

namespace obsdetail {
#if WIFISENSE_TRACE_COMPILED
extern std::atomic<bool> g_metrics_enabled;
#endif
}  // namespace obsdetail

#if WIFISENSE_TRACE_COMPILED
/// True while metric recording is live (the relaxed load is the entire
/// disabled-path cost of add/set/observe).
inline bool metrics_enabled() {
    return obsdetail::g_metrics_enabled.load(std::memory_order_relaxed);
}
#else
inline bool metrics_enabled() { return false; }
#endif

void metrics_enable();
void metrics_disable();
/// Zero every registered instrument (registrations and handles survive).
void metrics_reset();

/// Monotonic event count.
class Counter {
public:
    explicit Counter(std::string name) : name_(std::move(name)) {}
    void add(std::uint64_t n = 1) {
        if (metrics_enabled()) value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }
    const std::string& name() const { return name_; }

private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (epoch loss, stream health, ...). Writers race only
/// when instrumented code itself races, which the determinism contract
/// already forbids for anything output-bearing.
class Gauge {
public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    void set(double v) {
        if (metrics_enabled())
            bits_.store(bit_cast_u64(v), std::memory_order_relaxed);
    }
    double value() const {
        return bit_cast_double(bits_.load(std::memory_order_relaxed));
    }
    void reset() { bits_.store(0, std::memory_order_relaxed); }
    const std::string& name() const { return name_; }

private:
    static std::uint64_t bit_cast_u64(double d) {
        std::uint64_t u;
        __builtin_memcpy(&u, &d, sizeof u);
        return u;
    }
    static double bit_cast_double(std::uint64_t u) {
        double d;
        __builtin_memcpy(&d, &u, sizeof d);
        return d;
    }

    std::string name_;
    std::atomic<std::uint64_t> bits_{0};  ///< IEEE-754 bits; 0 == 0.0
};

/// Fixed-bucket histogram: `edges` are the ascending upper bounds of the
/// first N buckets; one overflow bucket catches everything above the last
/// edge. observe(v) lands v in the first bucket whose edge is >= v.
/// Out-of-range observations are additionally tallied explicitly:
/// underflow counts v below the first edge (they land in bucket 0, which
/// otherwise hides them among legitimately small values), overflow counts
/// v above the last edge (the catch-all bucket, named in the export so a
/// saturated edge table is visible instead of silent).
class Histogram {
public:
    Histogram(std::string name, std::span<const double> edges);

    void observe(double v) {
        if (!metrics_enabled()) return;
        if (!edges_.empty()) {
            // NaN fails both comparisons and is counted in neither.
            if (v < edges_.front())
                underflow_.fetch_add(1, std::memory_order_relaxed);
            else if (v > edges_.back())
                overflow_.fetch_add(1, std::memory_order_relaxed);
        }
        std::size_t lo = 0, hi = edges_.size();
        while (lo < hi) {  // first edge >= v (upper_bound on <)
            const std::size_t mid = (lo + hi) / 2;
            if (edges_[mid] < v)
                lo = mid + 1;
            else
                hi = mid;
        }
        counts_[lo].fetch_add(1, std::memory_order_relaxed);
        // Compare-and-swap accumulation: std::atomic<double>::fetch_add is
        // C++20 but the CAS loop is portable and the slow path is rare.
        std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
        for (;;) {
            double cur;
            __builtin_memcpy(&cur, &expected, sizeof cur);
            const double next = cur + v;
            std::uint64_t next_bits;
            __builtin_memcpy(&next_bits, &next, sizeof next_bits);
            if (sum_bits_.compare_exchange_weak(expected, next_bits,
                                                std::memory_order_relaxed))
                break;
        }
    }

    const std::vector<double>& edges() const { return edges_; }
    /// Per-bucket counts; index edges().size() is the overflow bucket.
    std::uint64_t bucket_count(std::size_t i) const {
        return counts_[i].load(std::memory_order_relaxed);
    }
    std::uint64_t total_count() const;
    /// Observations below the first edge (clamped into bucket 0).
    std::uint64_t underflow_count() const {
        return underflow_.load(std::memory_order_relaxed);
    }
    /// Observations above the last edge (in the catch-all bucket).
    std::uint64_t overflow_count() const {
        return overflow_.load(std::memory_order_relaxed);
    }
    double sum() const {
        const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
        double d;
        __builtin_memcpy(&d, &bits, sizeof d);
        return d;
    }
    void reset();
    const std::string& name() const { return name_; }

private:
    std::string name_;
    std::vector<double> edges_;
    std::vector<std::atomic<std::uint64_t>> counts_;  ///< edges.size() + 1
    std::atomic<std::uint64_t> sum_bits_{0};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
};

/// Microsecond latency bucket edges shared by the predict/step histograms.
inline constexpr double kLatencyBucketsUs[] = {
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    5000.0, 10000.0, 25000.0, 50000.0, 100000.0, 250000.0};

/// Registry lookup-or-create (process-wide, mutex-guarded, may allocate on
/// first use — hoist the reference out of hot loops). Names are unique per
/// instrument kind; re-registering a histogram name keeps the first edges.
Counter& obs_counter(std::string_view name);
Gauge& obs_gauge(std::string_view name);
Histogram& obs_histogram(std::string_view name, std::span<const double> edges);

/// Compact single-line JSON of every registered instrument:
/// {"counters":{...},"gauges":{...},"histograms":{"h":{"edges":[...],
/// "counts":[...],"count":N,"sum":S}}} — names sorted, deterministic.
std::string metrics_to_json();

/// Write metrics_to_json() (plus a trailing newline) to `path`.
[[nodiscard]] Status write_metrics_json(const std::string& path);

}  // namespace wifisense::common
