#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/parallel.hpp"

namespace wifisense::nn {

namespace {

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
void check_same_shape(const Matrix& a, const Matrix& b, const char* what) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        // wifisense-lint: allow(ipa.alloc-leak) error-text std::string exists
        // only on the precondition-failure path ending in the allowed throw
        throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                    a.shape_string() + " vs " + b.shape_string());
}

// ---------------------------------------------------------------------------
// GEMM: backend row-range kernels + a row-block-parallel dispatcher.
//
// The per-row-range arithmetic lives in src/nn/kernels/ behind the
// KernelBackend dispatch table (scalar reference + AVX2/FMA); this file owns
// the shape checks, workspace resizing, and the deterministic row-chunk
// decomposition. Each backend kernel computes output rows [r0, r1) of C and
// touches nothing else, so the dispatcher can hand disjoint row blocks to
// different threads and the result is bitwise identical to a serial run on
// the same backend: every output element is produced by exactly one thread,
// with a backend-fixed accumulation order (ascending k) at any thread
// count. Do NOT introduce shared accumulators here.
// ---------------------------------------------------------------------------

/// Row-block size targeting ~1M mul-adds per task, floored at 16 rows.
/// Depends only on the problem shape (never on the thread count), so the
/// chunk decomposition — and with it any per-chunk behavior — is invariant
/// across configurations. The floor matters for the AVX2 backend: its
/// packed 4x16-blocked GEMM only engages on chunks of >= 4 rows and
/// amortizes its B-panel packing across the chunk's row blocks, so
/// starving it with 1-2-row chunks silently degrades it to the single-row
/// tail kernel (~3x slower at MLP-sized k*n).
std::size_t gemm_row_grain(std::size_t flops_per_row) {
    constexpr std::size_t kTargetFlopsPerTask = 1024 * 1024;
    constexpr std::size_t kMinRows = 16;
    if (flops_per_row == 0) return kMinRows;
    return std::max(kMinRows, kTargetFlopsPerTask / flops_per_row);
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
    if (values_.size() != rows_ * cols_)
        throw std::invalid_argument("Matrix: value count does not match shape");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    values_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer");
        values_.insert(values_.end(), r.begin(), r.end());
    }
}

void Matrix::fill(float v) { std::fill(values_.begin(), values_.end(), v); }

void Matrix::copy_from(const Matrix& src) {
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    resize(src.rows(), src.cols());
    std::copy_n(src.data().data(), src.size(), values_.data());
}

std::string Matrix::shape_string() const {
    std::ostringstream os;
    os << "[" << rows_ << " x " << cols_ << "]";
    return os.str();
}

// The steady-state train/predict loop runs entirely through the kernels
// below; the annotated regions let wifisense-lint hold them to the
// zero-allocation contract of DESIGN.md §11.
// wifisense-lint: noalloc-begin

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
// wifisense-lint: allow-call(matmul_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
    if (a.cols() != b.rows())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("matmul: inner dimensions differ " +
                                    a.shape_string() + " * " + b.shape_string());
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    out.resize(a.rows(), b.cols());
    out.fill(0.0f);  // the row kernels accumulate, exactly like the wrapper
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    const kernels::KernelBackend& kb = kernels::active_backend();
    const float* ap = a.data().data();
    const float* bp = b.data().data();
    float* cp = out.data().data();
    common::parallel_for_chunks(m, gemm_row_grain(k * n),
                                [&, ap, bp, cp](std::size_t r0, std::size_t r1) {
                                    kb.matmul_rows(ap, bp, cp, k, n, r0, r1);
                                });
}

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
// wifisense-lint: allow-call(matmul_tn_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& out,
                    bool accumulate) {
    if (a.rows() != b.rows())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("matmul_tn: row counts differ " +
                                    a.shape_string() + "^T * " + b.shape_string());
    if (accumulate) {
        if (out.rows() != a.cols() || out.cols() != b.cols())
            // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
            // fires only on caller API misuse, never on data content
            throw std::invalid_argument("matmul_tn_into: accumulate shape mismatch");
    } else {
        // wifisense-lint: allow(noalloc.container-growth) resize within the
        // reserved workspace capacity is allocation-free (DESIGN.md §11)
        out.resize(a.cols(), b.cols());
        out.fill(0.0f);
    }
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    const kernels::KernelBackend& kb = kernels::active_backend();
    const float* ap = a.data().data();
    const float* bp = b.data().data();
    float* cp = out.data().data();
    common::parallel_for_chunks(m, gemm_row_grain(k * n),
                                [&, ap, bp, cp](std::size_t i0, std::size_t i1) {
                                    kb.matmul_tn_rows(ap, bp, cp, k, m, n, i0, i1);
                                });
}

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
// wifisense-lint: allow-call(matmul_nt_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& out) {
    if (a.cols() != b.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("matmul_nt: column counts differ " +
                                    a.shape_string() + " * " + b.shape_string() + "^T");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    out.resize(a.rows(), b.rows());
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    const kernels::KernelBackend& kb = kernels::active_backend();
    const float* ap = a.data().data();
    const float* bp = b.data().data();
    float* cp = out.data().data();
    common::parallel_for_chunks(m, gemm_row_grain(k * n),
                                [&, ap, bp, cp](std::size_t r0, std::size_t r1) {
                                    kb.matmul_nt_rows(ap, bp, cp, k, n, r0, r1);
                                });
}

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
// wifisense-lint: allow-call(matmul_rows, bias_act_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void dense_forward_into(const Matrix& a, const Matrix& w,
                        std::span<const float> bias, kernels::Activation act,
                        Matrix& out) {
    if (a.cols() != w.rows())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("dense_forward: inner dimensions differ " +
                                    a.shape_string() + " * " + w.shape_string());
    if (bias.size() != w.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("dense_forward: bias length != output cols");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    out.resize(a.rows(), w.cols());
    out.fill(0.0f);
    const std::size_t m = a.rows(), k = a.cols(), n = w.cols();
    const kernels::KernelBackend& kb = kernels::active_backend();
    const float* ap = a.data().data();
    const float* wp = w.data().data();
    const float* bp = bias.data();
    float* cp = out.data().data();
    common::parallel_for_chunks(
        m, gemm_row_grain(k * n),
        [&, ap, wp, bp, cp](std::size_t r0, std::size_t r1) {
            kb.matmul_rows(ap, wp, cp, k, n, r0, r1);
            kb.bias_act_rows(cp, bp, n, act, r0, r1);
        });
}

// wifisense-lint: noalloc-end

Matrix matmul(const Matrix& a, const Matrix& b) {
    Matrix c;
    matmul_into(a, b, c);
    return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
    Matrix c;
    matmul_tn_into(a, b, c);
    return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
    Matrix c;
    matmul_nt_into(a, b, c);
    return c;
}

void add_row_vector_inplace(Matrix& a, std::span<const float> v) {
    if (v.size() != a.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("add_row_vector_inplace: vector length != cols");
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const std::span<float> row = a.row(r);
        for (std::size_t c = 0; c < v.size(); ++c) row[c] += v[c];
    }
}

std::vector<float> column_sums(const Matrix& a) {
    std::vector<float> out(a.cols(), 0.0f);
    column_sums_into(a, out, /*accumulate=*/true);
    return out;
}

// wifisense-lint: noalloc-begin
// wifisense-lint: allow-call(column_sums_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void column_sums_into(const Matrix& a, std::span<float> out, bool accumulate) {
    if (out.size() != a.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("column_sums_into: output length != cols");
    if (!accumulate) std::fill(out.begin(), out.end(), 0.0f);
    kernels::active_backend().column_sums_rows(a.data().data(), a.rows(),
                                               a.cols(), out.data());
}
// wifisense-lint: noalloc-end

std::vector<float> column_means(const Matrix& a) {
    std::vector<float> out = column_sums(a);
    if (a.rows() == 0) return out;
    const float inv = 1.0f / static_cast<float>(a.rows());
    for (float& v : out) v *= inv;
    return out;
}

Matrix add(const Matrix& a, const Matrix& b) {
    Matrix c = a;
    add_inplace(c, b);
    return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
    Matrix c = a;
    sub_inplace(c, b);
    return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
    Matrix c = a;
    hadamard_inplace(c, b);
    return c;
}

void add_inplace(Matrix& a, const Matrix& b) {
    check_same_shape(a, b, "add");
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

void sub_inplace(Matrix& a, const Matrix& b) {
    check_same_shape(a, b, "sub");
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] -= b.data()[i];
}

void hadamard_inplace(Matrix& a, const Matrix& b) {
    check_same_shape(a, b, "hadamard");
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] *= b.data()[i];
}

void scale_inplace(Matrix& a, float s) {
    for (float& v : a.data()) v *= s;
}

Matrix transpose(const Matrix& a) {
    Matrix t(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) t.at(c, r) = a.at(r, c);
    return t;
}

Matrix row_block(const Matrix& a, std::size_t begin, std::size_t count) {
    Matrix out;
    row_block_into(a, begin, count, out);
    return out;
}

// wifisense-lint: noalloc-begin
void row_block_into(const Matrix& a, std::size_t begin, std::size_t count,
                    Matrix& out) {
    if (begin + count > a.rows())
        // wifisense-lint: allow(ipa.throw-leak) range precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::out_of_range("row_block: range exceeds matrix");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    out.resize(count, a.cols());
    std::copy_n(a.data().data() + begin * a.cols(), count * a.cols(),
                out.data().data());
}
// wifisense-lint: noalloc-end

Matrix gather_rows(const Matrix& a, std::span<const std::size_t> indices) {
    Matrix out;
    gather_rows_into(a, indices, out);
    return out;
}

// wifisense-lint: noalloc-begin
void gather_rows_into(const Matrix& a, std::span<const std::size_t> indices,
                      Matrix& out) {
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved workspace capacity is allocation-free (DESIGN.md §11)
    out.resize(indices.size(), a.cols());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        // wifisense-lint: allow(ipa.throw-leak) range precondition guard:
        // fires only on caller API misuse, never on data content
        if (indices[i] >= a.rows()) throw std::out_of_range("gather_rows: bad index");
        std::copy_n(a.row(indices[i]).data(), a.cols(), out.row(i).data());
    }
}
// wifisense-lint: noalloc-end

float max_abs_diff(const Matrix& a, const Matrix& b) {
    check_same_shape(a, b, "max_abs_diff");
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
    return m;
}

}  // namespace wifisense::nn
