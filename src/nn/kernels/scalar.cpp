// Scalar reference backend: the bitwise-deterministic kernels every golden
// in the repo pins. The float GEMM bodies are byte-for-byte the historical
// loops from nn/tensor.cpp (i-k-j order, ascending-k accumulation, the
// zero-multiplier skip) — moving them behind the dispatch table must not
// change a single bit at any thread count (tests/test_nn_workspace.cpp).
#include <algorithm>
#include <cmath>

#include "nn/kernels/backend.hpp"

namespace wifisense::nn::kernels {

namespace {

// wifisense-lint: noalloc-begin

/// C[r0:r1) += A * B, i-k-j order (streams B and C rows, row-major friendly).
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_matmul_rows(const float* a, const float* b, float* c,
                        std::size_t k, std::size_t n, std::size_t r0,
                        std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

/// Rows [i0, i1) of C += A^T * B: row i accumulates a(kk, i) * b(kk, :)
/// over ascending kk — the historical per-element order.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_matmul_tn_rows(const float* a, const float* b, float* c,
                           std::size_t kk_count, std::size_t m, std::size_t n,
                           std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::size_t kk = 0; kk < kk_count; ++kk) {
            const float av = a[kk * m + i];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
}

/// C[r0:r1) = A * B^T: independent dot products per output element.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_matmul_nt_rows(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t n, std::size_t r0,
                           std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_column_sums_rows(const float* a, std::size_t rows,
                             std::size_t cols, float* out) {
    for (std::size_t r = 0; r < rows; ++r) {
        const float* row = a + r * cols;
        for (std::size_t c = 0; c < cols; ++c) out[c] += row[c];
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_bias_act_rows(float* c, const float* bias, std::size_t n,
                          Activation act, std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
        float* crow = c + i * n;
        switch (act) {
            case Activation::kNone:
                for (std::size_t j = 0; j < n; ++j) crow[j] += bias[j];
                break;
            case Activation::kReLU:
                for (std::size_t j = 0; j < n; ++j) {
                    const float v = crow[j] + bias[j];
                    crow[j] = v > 0.0f ? v : 0.0f;
                }
                break;
            case Activation::kSigmoid:
                for (std::size_t j = 0; j < n; ++j) {
                    const float v = crow[j] + bias[j];
                    crow[j] = 1.0f / (1.0f + std::exp(-v));
                }
                break;
        }
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_gemm_s8_rows(const std::int8_t* a, const std::int8_t* w,
                         std::int32_t* c, std::size_t k, std::size_t n,
                         std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
        const std::int8_t* arow = a + i * k;
        std::int32_t* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const std::int8_t* wrow = w + j * k;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk)
                acc += static_cast<std::int32_t>(arow[kk]) *
                       static_cast<std::int32_t>(wrow[kk]);
            crow[j] = acc;
        }
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_quantize_s8_rows(const float* x, std::int8_t* q, float inv_scale,
                             std::size_t n, std::size_t r0, std::size_t r1) {
    // nearbyintf under the default FP environment rounds to nearest-even —
    // the same rule _mm256_cvtps_epi32 applies, so the backends agree
    // exactly on every quantized value.
    for (std::size_t i = r0 * n; i < r1 * n; ++i) {
        const float r = std::nearbyintf(x[i] * inv_scale);
        const float clamped = std::min(127.0f, std::max(-127.0f, r));
        q[i] = static_cast<std::int8_t>(clamped);
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void scalar_dequant_bias_act_rows(const std::int32_t* acc, float scale,
                                  const float* bias, float* out, std::size_t n,
                                  Activation act, std::size_t r0,
                                  std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
        const std::int32_t* arow = acc + i * n;
        float* orow = out + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            float v = static_cast<float>(arow[j]) * scale + bias[j];
            if (act == Activation::kReLU) {
                v = v > 0.0f ? v : 0.0f;
            } else if (act == Activation::kSigmoid) {
                v = 1.0f / (1.0f + std::exp(-v));
            }
            orow[j] = v;
        }
    }
}

// wifisense-lint: noalloc-end

}  // namespace

const KernelBackend& scalar_backend() {
    static const KernelBackend backend = {
        "scalar",
        &scalar_matmul_rows,
        &scalar_matmul_tn_rows,
        &scalar_matmul_nt_rows,
        &scalar_column_sums_rows,
        &scalar_bias_act_rows,
        &scalar_gemm_s8_rows,
        &scalar_quantize_s8_rows,
        &scalar_dequant_bias_act_rows,
    };
    return backend;
}

}  // namespace wifisense::nn::kernels
