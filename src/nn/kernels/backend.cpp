#include "nn/kernels/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/cpuid.hpp"

namespace wifisense::nn::kernels {

namespace {

const KernelBackend* resolve(std::string_view name) {
    if (name == "scalar") return &scalar_backend();
    if (name == "avx2") return avx2_supported() ? avx2_backend() : nullptr;
    if (name == "auto")
        return avx2_supported() ? avx2_backend() : &scalar_backend();
    return nullptr;
}

/// Startup selection: WIFISENSE_KERNELS if set (bad values warn and fall
/// back), otherwise the scalar reference. Runs once, on the first touch of
/// the dispatch slot from any entry point.
const KernelBackend* startup_backend() {
    if (const char* env = std::getenv("WIFISENSE_KERNELS");
        env != nullptr && env[0] != '\0') {
        if (const KernelBackend* backend = resolve(env)) return backend;
        std::fprintf(stderr,
                     "wifisense: WIFISENSE_KERNELS=%s is unknown or "
                     "unsupported on this CPU (%s); using scalar kernels\n",
                     env, common::cpu_feature_string().c_str());
    }
    return &scalar_backend();
}

/// Relaxed is enough: the table contents are immutable statics; only the
/// pointer swaps, and callers are required to switch between parallel
/// regions (same contract as common::set_execution_config).
// wifisense-lint: allow-call(startup_backend) runs once per process inside the function-local static's initializer, before any steady-state caller exists
std::atomic<const KernelBackend*>& active_slot() {
    static std::atomic<const KernelBackend*> slot{startup_backend()};
    return slot;
}

}  // namespace

bool avx2_supported() {
    const common::CpuFeatures& f = common::cpu_features();
    return avx2_backend() != nullptr && f.avx2 && f.fma;
}

const KernelBackend& active_backend() {
    std::atomic<const KernelBackend*>& slot = active_slot();
    return *slot.load(std::memory_order_relaxed);
}

bool set_kernel_backend(std::string_view name) {
    const KernelBackend* backend = resolve(name);
    if (backend == nullptr) return false;
    std::atomic<const KernelBackend*>& slot = active_slot();
    slot.store(backend, std::memory_order_relaxed);
    return true;
}

const char* configure_kernels_from_env() {
    std::atomic<const KernelBackend*>& slot = active_slot();
    return slot.load(std::memory_order_relaxed)->name;
}

}  // namespace wifisense::nn::kernels
