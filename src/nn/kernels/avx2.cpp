// AVX2+FMA backend. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/nn/CMakeLists.txt); nothing here runs unless the
// dispatcher checked CPUID first, so the binary stays runnable on any
// x86-64 host.
//
// Divergence contract (DESIGN.md §16): only the float GEMM kernels use FMA
// and therefore round differently from the scalar reference — they answer
// to tolerance goldens. Every epilogue (bias/activation, quantize,
// dequantize) and the whole int8 GEMM use elementwise IEEE add/mul/max or
// exact integer arithmetic in the same per-element order as the scalar
// backend, so those stay bitwise identical across backends; the sigmoid
// epilogue simply delegates to libm like the scalar code does.
#include "nn/kernels/backend.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace wifisense::nn::kernels {

namespace {

/// Horizontal sum of an 8-float accumulator.
float hsum_ps(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

/// Horizontal sum of an 8-int32 accumulator.
std::int32_t hsum_epi32(__m256i v) {
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi32(lo, hi);
    s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
    return _mm_cvtsi128_si32(s);
}

// wifisense-lint: noalloc-begin

/// Single-row broadcast kernel: the row/column tails of the blocked GEMM
/// below, and the whole job for narrow outputs. Starts at column j0.
void matmul_row_tail(const float* arow, const float* b, float* crow,
                     std::size_t k, std::size_t n, std::size_t j0) {
    const std::size_t n8 = j0 + ((n - j0) & ~std::size_t{7});
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;  // post-ReLU activations are ~half zeros
        const __m256 vav = _mm256_set1_ps(av);
        const float* brow = b + kk * n;
        std::size_t j = j0;
        for (; j < n8; j += 8) {
            const __m256 acc = _mm256_loadu_ps(crow + j);
            _mm256_storeu_ps(crow + j,
                             _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j), acc));
        }
        for (; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
    }
}

/// B-panel k-chunk. 256 k-steps x 16 columns packs into a 16 KiB stack
/// buffer — L1-resident next to the four A rows and the C tile streaming
/// against it.
constexpr std::size_t kPanelK = 256;

/// Packed register-blocked GEMM. B's natural layout is row-major [k x n],
/// so a 16-column tile walk strides by 4n bytes — every load a fresh cache
/// line and a page crossing every few steps, which starves the FMA units
/// (~18 GF/s measured against an ~75 GF/s machine peak). Each 16-column
/// panel is therefore packed once into a contiguous stack buffer and
/// reused across all row blocks; the 4x16 microkernel (eight ymm
/// accumulators, C loaded/stored once per tile per k-chunk) then runs
/// entirely out of L1. Each C element still accumulates its FMA chain in
/// ascending-k order — chunk boundaries only spill the exact partial to C
/// and reload it — so the result is bitwise identical to the single-row
/// kernel above at any blocking phase, which is what keeps this backend
/// thread-count invariant (row chunks can start at any r0).
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_matmul_rows(const float* a, const float* b, float* c, std::size_t k,
                      std::size_t n, std::size_t r0, std::size_t r1) {
    const std::size_t n16 = n & ~std::size_t{15};
    if (r1 - r0 >= 4 && n16 > 0) {
        alignas(32) float bpack[kPanelK * 16];
        for (std::size_t j = 0; j < n16; j += 16) {
            for (std::size_t k0 = 0; k0 < k; k0 += kPanelK) {
                const std::size_t kc = std::min(kPanelK, k - k0);
                for (std::size_t kk = 0; kk < kc; ++kk) {
                    const float* src = b + (k0 + kk) * n + j;
                    _mm256_store_ps(bpack + kk * 16, _mm256_loadu_ps(src));
                    _mm256_store_ps(bpack + kk * 16 + 8,
                                    _mm256_loadu_ps(src + 8));
                }
                std::size_t i = r0;
                for (; i + 4 <= r1; i += 4) {
                    const float* a0 = a + i * k + k0;
                    const float* a1 = a0 + k;
                    const float* a2 = a1 + k;
                    const float* a3 = a2 + k;
                    float* c0 = c + i * n + j;
                    float* c1 = c0 + n;
                    float* c2 = c1 + n;
                    float* c3 = c2 + n;
                    __m256 acc00 = _mm256_loadu_ps(c0);
                    __m256 acc01 = _mm256_loadu_ps(c0 + 8);
                    __m256 acc10 = _mm256_loadu_ps(c1);
                    __m256 acc11 = _mm256_loadu_ps(c1 + 8);
                    __m256 acc20 = _mm256_loadu_ps(c2);
                    __m256 acc21 = _mm256_loadu_ps(c2 + 8);
                    __m256 acc30 = _mm256_loadu_ps(c3);
                    __m256 acc31 = _mm256_loadu_ps(c3 + 8);
                    for (std::size_t kk = 0; kk < kc; ++kk) {
                        const float* bp = bpack + kk * 16;
                        const __m256 b0 = _mm256_load_ps(bp);
                        const __m256 b1 = _mm256_load_ps(bp + 8);
                        __m256 av = _mm256_set1_ps(a0[kk]);
                        acc00 = _mm256_fmadd_ps(av, b0, acc00);
                        acc01 = _mm256_fmadd_ps(av, b1, acc01);
                        av = _mm256_set1_ps(a1[kk]);
                        acc10 = _mm256_fmadd_ps(av, b0, acc10);
                        acc11 = _mm256_fmadd_ps(av, b1, acc11);
                        av = _mm256_set1_ps(a2[kk]);
                        acc20 = _mm256_fmadd_ps(av, b0, acc20);
                        acc21 = _mm256_fmadd_ps(av, b1, acc21);
                        av = _mm256_set1_ps(a3[kk]);
                        acc30 = _mm256_fmadd_ps(av, b0, acc30);
                        acc31 = _mm256_fmadd_ps(av, b1, acc31);
                    }
                    _mm256_storeu_ps(c0, acc00);
                    _mm256_storeu_ps(c0 + 8, acc01);
                    _mm256_storeu_ps(c1, acc10);
                    _mm256_storeu_ps(c1 + 8, acc11);
                    _mm256_storeu_ps(c2, acc20);
                    _mm256_storeu_ps(c2 + 8, acc21);
                    _mm256_storeu_ps(c3, acc30);
                    _mm256_storeu_ps(c3 + 8, acc31);
                }
                for (; i < r1; ++i) {
                    const float* arow = a + i * k + k0;
                    float* crow = c + i * n + j;
                    __m256 acc0 = _mm256_loadu_ps(crow);
                    __m256 acc1 = _mm256_loadu_ps(crow + 8);
                    for (std::size_t kk = 0; kk < kc; ++kk) {
                        const float av = arow[kk];
                        if (av == 0.0f) continue;
                        const __m256 vav = _mm256_set1_ps(av);
                        const float* bp = bpack + kk * 16;
                        acc0 = _mm256_fmadd_ps(vav, _mm256_load_ps(bp), acc0);
                        acc1 = _mm256_fmadd_ps(vav, _mm256_load_ps(bp + 8),
                                               acc1);
                    }
                    _mm256_storeu_ps(crow, acc0);
                    _mm256_storeu_ps(crow + 8, acc1);
                }
            }
        }
        if (n16 < n)
            for (std::size_t i = r0; i < r1; ++i)
                matmul_row_tail(a + i * k, b, c + i * n, k, n, n16);
        return;
    }
    for (std::size_t i = r0; i < r1; ++i)
        matmul_row_tail(a + i * k, b, c + i * n, k, n, 0);
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_matmul_tn_rows(const float* a, const float* b, float* c,
                         std::size_t kk_count, std::size_t m, std::size_t n,
                         std::size_t i0, std::size_t i1) {
    const std::size_t n8 = n & ~std::size_t{7};
    for (std::size_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        for (std::size_t kk = 0; kk < kk_count; ++kk) {
            const float av = a[kk * m + i];
            if (av == 0.0f) continue;
            const __m256 vav = _mm256_set1_ps(av);
            const float* brow = b + kk * n;
            std::size_t j = 0;
            for (; j < n8; j += 8) {
                const __m256 acc = _mm256_loadu_ps(crow + j);
                _mm256_storeu_ps(crow + j,
                                 _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j), acc));
            }
            for (; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
        }
    }
}

// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_matmul_nt_rows(const float* a, const float* b, float* c,
                         std::size_t k, std::size_t n, std::size_t r0,
                         std::size_t r1) {
    const std::size_t k8 = k & ~std::size_t{7};
    for (std::size_t i = r0; i < r1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b + j * k;
            __m256 vacc = _mm256_setzero_ps();
            std::size_t kk = 0;
            for (; kk < k8; kk += 8)
                vacc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                                       _mm256_loadu_ps(brow + kk), vacc);
            float acc = hsum_ps(vacc);
            for (; kk < k; ++kk) acc = std::fmaf(arow[kk], brow[kk], acc);
            crow[j] = acc;
        }
    }
}

/// Bitwise identical to scalar: per-column sums accumulate rows in the same
/// sequential order; vectorizing across columns reorders nothing.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_column_sums_rows(const float* a, std::size_t rows, std::size_t cols,
                           float* out) {
    const std::size_t c8 = cols & ~std::size_t{7};
    for (std::size_t r = 0; r < rows; ++r) {
        const float* row = a + r * cols;
        std::size_t c = 0;
        for (; c < c8; c += 8)
            _mm256_storeu_ps(out + c, _mm256_add_ps(_mm256_loadu_ps(out + c),
                                                    _mm256_loadu_ps(row + c)));
        for (; c < cols; ++c) out[c] += row[c];
    }
}

/// kNone/kReLU are plain elementwise add/max — bitwise identical to scalar.
/// kSigmoid needs libm exp per element, so it runs the scalar loop.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_bias_act_rows(float* c, const float* bias, std::size_t n,
                        Activation act, std::size_t r0, std::size_t r1) {
    const std::size_t n8 = n & ~std::size_t{7};
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t i = r0; i < r1; ++i) {
        float* crow = c + i * n;
        switch (act) {
            case Activation::kNone: {
                std::size_t j = 0;
                for (; j < n8; j += 8)
                    _mm256_storeu_ps(crow + j,
                                     _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                   _mm256_loadu_ps(bias + j)));
                for (; j < n; ++j) crow[j] += bias[j];
                break;
            }
            case Activation::kReLU: {
                std::size_t j = 0;
                for (; j < n8; j += 8) {
                    const __m256 v = _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                   _mm256_loadu_ps(bias + j));
                    _mm256_storeu_ps(crow + j, _mm256_max_ps(v, zero));
                }
                for (; j < n; ++j) {
                    const float v = crow[j] + bias[j];
                    crow[j] = v > 0.0f ? v : 0.0f;
                }
                break;
            }
            case Activation::kSigmoid:
                for (std::size_t j = 0; j < n; ++j) {
                    const float v = crow[j] + bias[j];
                    crow[j] = 1.0f / (1.0f + std::exp(-v));
                }
                break;
        }
    }
}

/// int8 dot products via sign-extension to int16 + _mm256_madd_epi16
/// pair-sums: 16 multiplies per instruction, exact int32 accumulation —
/// bitwise identical to the scalar backend by construction.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_gemm_s8_rows(const std::int8_t* a, const std::int8_t* w,
                       std::int32_t* c, std::size_t k, std::size_t n,
                       std::size_t r0, std::size_t r1) {
    const std::size_t k16 = k & ~std::size_t{15};
    for (std::size_t i = r0; i < r1; ++i) {
        const std::int8_t* arow = a + i * k;
        std::int32_t* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const std::int8_t* wrow = w + j * k;
            __m256i vacc = _mm256_setzero_si256();
            std::size_t kk = 0;
            for (; kk < k16; kk += 16) {
                const __m256i va = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(arow + kk)));
                const __m256i vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(wrow + kk)));
                vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(va, vw));
            }
            std::int32_t acc = hsum_epi32(vacc);
            for (; kk < k; ++kk)
                acc += static_cast<std::int32_t>(arow[kk]) *
                       static_cast<std::int32_t>(wrow[kk]);
            crow[j] = acc;
        }
    }
}

/// Clamp-then-convert; _mm256_cvtps_epi32 rounds to nearest-even exactly
/// like the scalar nearbyintf, and inputs are pre-clamped to ±127 so the
/// saturating packs below never alter a value.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_quantize_s8_rows(const float* x, std::int8_t* q, float inv_scale,
                           std::size_t n, std::size_t r0, std::size_t r1) {
    const __m256 vscale = _mm256_set1_ps(inv_scale);
    const __m256 vlo = _mm256_set1_ps(-127.0f);
    const __m256 vhi = _mm256_set1_ps(127.0f);
    const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const auto cvt8 = [&](const float* p) {
        const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(p), vscale);
        return _mm256_cvtps_epi32(_mm256_max_ps(vlo, _mm256_min_ps(vhi, t)));
    };
    std::size_t begin = r0 * n;
    const std::size_t end = r1 * n;
    const std::size_t count = end - begin;
    const std::size_t n32 = begin + (count & ~std::size_t{31});
    for (; begin < n32; begin += 32) {
        const __m256i i0 = cvt8(x + begin);
        const __m256i i1 = cvt8(x + begin + 8);
        const __m256i i2 = cvt8(x + begin + 16);
        const __m256i i3 = cvt8(x + begin + 24);
        const __m256i p01 = _mm256_packs_epi32(i0, i1);  // 16 x i16, lane-mixed
        const __m256i p23 = _mm256_packs_epi32(i2, i3);
        const __m256i packed = _mm256_packs_epi16(p01, p23);  // 32 x i8
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(q + begin),
            _mm256_permutevar8x32_epi32(packed, unshuffle));
    }
    for (; begin < end; ++begin) {
        const float r = std::nearbyintf(x[begin] * inv_scale);
        const float clamped = r < -127.0f ? -127.0f : (r > 127.0f ? 127.0f : r);
        q[begin] = static_cast<std::int8_t>(clamped);
    }
}

/// mul + add (no FMA) in the same per-element order as scalar => bitwise
/// identical dequantization; sigmoid delegates to the scalar loop.
// wifisense-lint: requires(noalloc, noexcept, noclock, det)
void avx2_dequant_bias_act_rows(const std::int32_t* acc, float scale,
                                const float* bias, float* out, std::size_t n,
                                Activation act, std::size_t r0,
                                std::size_t r1) {
    const __m256 vscale = _mm256_set1_ps(scale);
    const __m256 zero = _mm256_setzero_ps();
    const std::size_t n8 = n & ~std::size_t{7};
    for (std::size_t i = r0; i < r1; ++i) {
        const std::int32_t* arow = acc + i * n;
        float* orow = out + i * n;
        if (act == Activation::kSigmoid) {
            for (std::size_t j = 0; j < n; ++j) {
                const float v = static_cast<float>(arow[j]) * scale + bias[j];
                orow[j] = 1.0f / (1.0f + std::exp(-v));
            }
            continue;
        }
        std::size_t j = 0;
        for (; j < n8; j += 8) {
            const __m256 vf = _mm256_cvtepi32_ps(_mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(arow + j)));
            __m256 v = _mm256_add_ps(_mm256_mul_ps(vf, vscale),
                                     _mm256_loadu_ps(bias + j));
            if (act == Activation::kReLU) v = _mm256_max_ps(v, zero);
            _mm256_storeu_ps(orow + j, v);
        }
        for (; j < n; ++j) {
            float v = static_cast<float>(arow[j]) * scale + bias[j];
            if (act == Activation::kReLU) v = v > 0.0f ? v : 0.0f;
            orow[j] = v;
        }
    }
}

// wifisense-lint: noalloc-end

}  // namespace

const KernelBackend* avx2_backend() {
    static const KernelBackend backend = {
        "avx2",
        &avx2_matmul_rows,
        &avx2_matmul_tn_rows,
        &avx2_matmul_nt_rows,
        &avx2_column_sums_rows,
        &avx2_bias_act_rows,
        &avx2_gemm_s8_rows,
        &avx2_quantize_s8_rows,
        &avx2_dequant_bias_act_rows,
    };
    return &backend;
}

}  // namespace wifisense::nn::kernels

#else  // non-x86 build: the AVX2 backend does not exist.

namespace wifisense::nn::kernels {
const KernelBackend* avx2_backend() { return nullptr; }
}  // namespace wifisense::nn::kernels

#endif
