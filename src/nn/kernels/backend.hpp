// Runtime-dispatched microkernel backends (DESIGN.md §16).
//
// The tensor-level `_into` kernels in nn/tensor.cpp keep their shape checks,
// workspace resizing and deterministic row-chunk decomposition, but the
// per-row-range arithmetic is routed through the function-pointer table
// below. Two implementations register here:
//
//   * scalar (src/nn/kernels/scalar.cpp) — the bitwise-deterministic
//     reference: byte-for-byte the historical loops, pinned by the workspace
//     goldens at 1/2/8 threads. Always available; the startup default.
//   * avx2 (src/nn/kernels/avx2.cpp) — AVX2+FMA vectorized kernels, built
//     only on x86-64 (the TU carries its own -mavx2 -mfma flags) and
//     eligible only when CPUID reports both extensions. FMA contraction
//     reassociates rounding, so this backend answers to tolerance goldens,
//     not bitwise ones; results are still bitwise *thread-count invariant*
//     because the chunk decomposition never changes.
//
// Selection: WIFISENSE_KERNELS=scalar|avx2|auto (env), or the --kernels=
// flag on the bench/tool binaries, or set_kernel_backend() from code.
// `auto` resolves to the fastest supported backend. The default without any
// of those is scalar — reproduction bitwise-ness stays opt-out, speed
// opt-in (see DESIGN.md §16 for the rationale).
//
// Every function here writes only rows [r0, r1) of its destination and
// reads nothing it may concurrently write, so the tensor layer can hand
// disjoint row blocks to different pool workers unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wifisense::nn::kernels {

/// Elementwise activation fused into the bias / dequantize epilogues.
enum class Activation : std::uint8_t { kNone = 0, kReLU = 1, kSigmoid = 2 };

/// Function-pointer dispatch table. All matrices are dense row-major with
/// no padding: row i of an [r x c] matrix starts at data + i*c.
struct KernelBackend {
    const char* name;

    /// C[r0:r1) += A * B. A is [m x k], B is [k x n], C is [m x n].
    void (*matmul_rows)(const float* a, const float* b, float* c,
                        std::size_t k, std::size_t n, std::size_t r0,
                        std::size_t r1);

    /// Rows [i0, i1) of C += A^T * B. A is [kk x m], B is [kk x n],
    /// C is [m x n].
    void (*matmul_tn_rows)(const float* a, const float* b, float* c,
                           std::size_t kk, std::size_t m, std::size_t n,
                           std::size_t i0, std::size_t i1);

    /// C[r0:r1) = A * B^T. A is [m x k], B is [n x k], C is [m x n].
    void (*matmul_nt_rows)(const float* a, const float* b, float* c,
                           std::size_t k, std::size_t n, std::size_t r0,
                           std::size_t r1);

    /// out[c] += column sums of A ([rows x cols]); out has cols entries.
    /// Accumulation over rows is sequential per column on every backend, so
    /// this kernel is bitwise identical across backends.
    void (*column_sums_rows)(const float* a, std::size_t rows,
                             std::size_t cols, float* out);

    /// Fused epilogue: c[r][j] = act(c[r][j] + bias[j]) for rows [r0, r1).
    /// Per-element order matches the historical add-bias-then-activation
    /// layer sequence, so the scalar version is bitwise interchangeable
    /// with it.
    void (*bias_act_rows)(float* c, const float* bias, std::size_t n,
                          Activation act, std::size_t r0, std::size_t r1);

    /// int8 GEMM against a transposed weight matrix:
    /// c[r][j] = sum_k a[r*k + kk] * w[j*k + kk], int32 accumulation,
    /// for rows [r0, r1). a is [rows x k] int8, w is [n x k] int8.
    /// Integer arithmetic is exact, so every backend agrees bitwise.
    void (*gemm_s8_rows)(const std::int8_t* a, const std::int8_t* w,
                         std::int32_t* c, std::size_t k, std::size_t n,
                         std::size_t r0, std::size_t r1);

    /// Symmetric int8 quantization of rows [r0, r1) of x ([rows x n]):
    /// q[i] = clamp(round_to_nearest_even(x[i] * inv_scale), -127, 127).
    void (*quantize_s8_rows)(const float* x, std::int8_t* q, float inv_scale,
                             std::size_t n, std::size_t r0, std::size_t r1);

    /// Dequantize + bias + activation epilogue of the int8 GEMM:
    /// out[r][j] = act(acc[r][j] * scale + bias[j]) for rows [r0, r1).
    void (*dequant_bias_act_rows)(const std::int32_t* acc, float scale,
                                  const float* bias, float* out,
                                  std::size_t n, Activation act,
                                  std::size_t r0, std::size_t r1);
};

/// The always-available bitwise-reference backend.
const KernelBackend& scalar_backend();

/// The AVX2+FMA backend, or nullptr on builds without x86-64 support.
/// (Hardware eligibility is a separate question — see avx2_supported().)
const KernelBackend* avx2_backend();

/// True when the AVX2 backend is both compiled in and runnable on this CPU.
bool avx2_supported();

/// The backend the tensor kernels currently route through. First use
/// applies WIFISENSE_KERNELS (unset/empty => scalar).
const KernelBackend& active_backend();

/// Select a backend by name: "scalar", "avx2", or "auto" (fastest
/// supported). Returns false — leaving the active backend unchanged — for
/// unknown names or for "avx2" on hardware without it. Must not be called
/// from inside a parallel region.
bool set_kernel_backend(std::string_view name);

/// Apply the WIFISENSE_KERNELS environment variable if set and non-empty
/// (invalid values fall back to scalar with a stderr warning). Returns the
/// name of the backend in effect afterwards.
const char* configure_kernels_from_env();

}  // namespace wifisense::nn::kernels
