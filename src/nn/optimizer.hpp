// Optimizers. The paper trains with "adaptive mini-batch gradient descent
// with a weight decay strategy [Loshchilov & Hutter]" — i.e. AdamW with
// decoupled weight decay, which is the default here. Plain SGD (+momentum)
// is kept for the ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"

namespace wifisense::nn {

class Optimizer {
public:
    virtual ~Optimizer() = default;
    /// Apply one update step to every parameter view. Gradients are read,
    /// not cleared; call Mlp::zero_grad() before the next backward pass.
    virtual void step(std::vector<ParamView>& params) = 0;
    virtual void set_learning_rate(double lr) = 0;
    virtual double learning_rate() const = 0;
};

struct AdamWConfig {
    double lr = 5e-3;            ///< paper's learning rate
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 1e-2;  ///< decoupled; applied to weights only if
                                 ///< decay_bias is false
    bool decay_bias = false;
};

/// AdamW (Loshchilov & Hutter, ICLR 2019): Adam moments with the weight
/// decay applied directly to the parameters, not through the gradient.
class AdamW final : public Optimizer {
public:
    explicit AdamW(AdamWConfig cfg = {});

    void step(std::vector<ParamView>& params) override;
    void set_learning_rate(double lr) override { cfg_.lr = lr; }
    double learning_rate() const override { return cfg_.lr; }
    std::size_t step_count() const { return t_; }

private:
    AdamWConfig cfg_;
    std::size_t t_ = 0;
    // One moment pair per parameter view, keyed by view order (stable for a
    // fixed network).
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
};

struct SgdConfig {
    double lr = 1e-2;
    double momentum = 0.0;
    double weight_decay = 0.0;  ///< classic L2 (coupled) decay
};

class Sgd final : public Optimizer {
public:
    explicit Sgd(SgdConfig cfg = {});

    void step(std::vector<ParamView>& params) override;
    void set_learning_rate(double lr) override { cfg_.lr = lr; }
    double learning_rate() const override { return cfg_.lr; }

private:
    SgdConfig cfg_;
    std::vector<std::vector<float>> velocity_;
};

}  // namespace wifisense::nn
