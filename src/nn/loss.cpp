#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace wifisense::nn {

namespace {

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
void check_shapes(const Matrix& a, const Matrix& b, const char* what) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        // wifisense-lint: allow(ipa.alloc-leak) error-text exists only on
        // the failure path ending in the allowed throw
        throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                    a.shape_string() + " vs " + b.shape_string());
    // wifisense-lint: allow(ipa.throw-leak) empty-batch precondition guard
    // wifisense-lint: allow(ipa.alloc-leak) error-text exists only on the
    // failure path ending in the allowed throw
    if (a.empty()) throw std::invalid_argument(std::string(what) + ": empty batch");
}

}  // namespace

LossResult Loss::compute(const Matrix& outputs, const Matrix& targets) const {
    LossResult res;
    res.value = compute_into(outputs, targets, res.grad);
    return res;
}

double BceWithLogitsLoss::compute_into(const Matrix& outputs,
                                       const Matrix& targets, Matrix& grad) const {
    check_shapes(outputs, targets, "BceWithLogitsLoss");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved gradient-buffer capacity is allocation-free (DESIGN.md §11)
    grad.resize(outputs.rows(), outputs.cols());
    const double inv_n = 1.0 / static_cast<double>(outputs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const double z = static_cast<double>(outputs.data()[i]);
        const double y = static_cast<double>(targets.data()[i]);
        acc += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::abs(z)));
        const double p = 1.0 / (1.0 + std::exp(-z));
        grad.data()[i] = static_cast<float>((p - y) * inv_n);
    }
    return acc * inv_n;
}

double MseLoss::compute_into(const Matrix& outputs, const Matrix& targets,
                             Matrix& grad) const {
    check_shapes(outputs, targets, "MseLoss");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved gradient-buffer capacity is allocation-free (DESIGN.md §11)
    grad.resize(outputs.rows(), outputs.cols());
    const double inv_n = 1.0 / static_cast<double>(outputs.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const double d = static_cast<double>(outputs.data()[i]) -
                         static_cast<double>(targets.data()[i]);
        acc += d * d;
        grad.data()[i] = static_cast<float>(2.0 * d * inv_n);
    }
    return acc * inv_n;
}

double SoftmaxCrossEntropyLoss::compute_into(const Matrix& outputs,
                                             const Matrix& targets,
                                             Matrix& grad) const {
    check_shapes(outputs, targets, "SoftmaxCrossEntropyLoss");
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved gradient-buffer capacity is allocation-free (DESIGN.md §11)
    grad.resize(outputs.rows(), outputs.cols());
    const double inv_n = 1.0 / static_cast<double>(outputs.rows());
    double acc = 0.0;
    for (std::size_t r = 0; r < outputs.rows(); ++r) {
        const std::span<const float> z = outputs.row(r);
        const std::span<const float> y = targets.row(r);
        // log-sum-exp with max subtraction for stability.
        double zmax = static_cast<double>(z[0]);
        for (const float v : z) zmax = std::max(zmax, static_cast<double>(v));
        double lse = 0.0;
        for (const float v : z) lse += std::exp(static_cast<double>(v) - zmax);
        lse = std::log(lse) + zmax;
        for (std::size_t c = 0; c < outputs.cols(); ++c) {
            const double p = std::exp(static_cast<double>(z[c]) - lse);
            acc -= static_cast<double>(y[c]) * (static_cast<double>(z[c]) - lse);
            grad.at(r, c) =
                static_cast<float>((p - static_cast<double>(y[c])) * inv_n);
        }
    }
    return acc * inv_n;
}

Matrix sigmoid(const Matrix& logits) {
    Matrix out = logits;
    for (float& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
    return out;
}

Matrix softmax(const Matrix& logits) {
    Matrix out = logits;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        const std::span<float> row = out.row(r);
        float zmax = row[0];
        for (const float v : row) zmax = std::max(zmax, v);
        float sum = 0.0f;
        for (float& v : row) {
            v = std::exp(v - zmax);
            sum += v;
        }
        for (float& v : row) v /= sum;
    }
    return out;
}

std::vector<int> argmax_rows(const Matrix& scores) {
    std::vector<int> out(scores.rows());
    for (std::size_t r = 0; r < scores.rows(); ++r) {
        const std::span<const float> row = scores.row(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < row.size(); ++c)
            if (row[c] > row[best]) best = c;
        out[r] = static_cast<int>(best);
    }
    return out;
}

Matrix one_hot(const std::vector<int>& labels, std::size_t n_classes) {
    Matrix out(labels.size(), n_classes, 0.0f);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int c = labels[i];
        if (c < 0 || static_cast<std::size_t>(c) >= n_classes)
            throw std::invalid_argument("one_hot: label out of range");
        out.at(i, static_cast<std::size_t>(c)) = 1.0f;
    }
    return out;
}

}  // namespace wifisense::nn
