#include "nn/layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wifisense::nn {

void Layer::zero_grad() {
    for (ParamView& p : parameters())
        std::fill(p.grads.begin(), p.grads.end(), 0.0f);
}

Dense::Dense(std::size_t in, std::size_t out)
    : in_(in), out_(out), w_(in, out), b_(out, 0.0f), gw_(in, out), gb_(out, 0.0f) {
    if (in == 0 || out == 0) throw std::invalid_argument("Dense: zero dimension");
}

Matrix Dense::forward(const Matrix& input) {
    if (input.cols() != in_)
        throw std::invalid_argument("Dense::forward: input width " +
                                    input.shape_string() + " != " + std::to_string(in_));
    last_input_ = input;
    Matrix out = matmul(input, w_);
    add_row_vector_inplace(out, b_);
    last_output_ = out;
    return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
    if (grad_output.rows() != last_input_.rows() || grad_output.cols() != out_)
        throw std::invalid_argument("Dense::backward: gradient shape mismatch");
    last_output_grad_ = grad_output;

    // Accumulate (not overwrite): supports gradient accumulation across
    // micro-batches and matches optimizer semantics.
    const Matrix gw = matmul_tn(last_input_, grad_output);
    for (std::size_t i = 0; i < gw_.size(); ++i) gw_.data()[i] += gw.data()[i];
    const std::vector<float> gb = column_sums(grad_output);
    for (std::size_t i = 0; i < gb_.size(); ++i) gb_[i] += gb[i];

    return matmul_nt(grad_output, w_);
}

std::vector<ParamView> Dense::parameters() {
    return {
        {"weight", w_.data(), gw_.data()},
        {"bias", std::span<float>(b_), std::span<float>(gb_)},
    };
}

Matrix ReLU::forward(const Matrix& input) {
    if (input.cols() != width_)
        throw std::invalid_argument("ReLU::forward: width mismatch");
    Matrix out = input;
    for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
    last_output_ = out;
    return out;
}

Matrix ReLU::backward(const Matrix& grad_output) {
    if (grad_output.rows() != last_output_.rows() ||
        grad_output.cols() != last_output_.cols())
        throw std::invalid_argument("ReLU::backward: gradient shape mismatch");
    last_output_grad_ = grad_output;
    Matrix gin = grad_output;
    for (std::size_t i = 0; i < gin.size(); ++i)
        if (last_output_.data()[i] <= 0.0f) gin.data()[i] = 0.0f;
    return gin;
}

Dropout::Dropout(std::size_t width, double p, std::uint64_t seed)
    : width_(width), p_(p), rng_(seed) {
    if (p_ < 0.0 || p_ >= 1.0)
        throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Matrix Dropout::forward(const Matrix& input) {
    if (input.cols() != width_)
        throw std::invalid_argument("Dropout::forward: width mismatch");
    if (!training_ || p_ == 0.0) {
        last_output_ = input;
        mask_ = Matrix();
        return input;
    }
    std::bernoulli_distribution keep(1.0 - p_);
    const float scale = static_cast<float>(1.0 / (1.0 - p_));
    mask_ = Matrix(input.rows(), input.cols());
    Matrix out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const float m = keep(rng_) ? scale : 0.0f;
        mask_.data()[i] = m;
        out.data()[i] *= m;
    }
    last_output_ = out;
    return out;
}

Matrix Dropout::backward(const Matrix& grad_output) {
    if (grad_output.rows() != last_output_.rows() ||
        grad_output.cols() != last_output_.cols())
        throw std::invalid_argument("Dropout::backward: gradient shape mismatch");
    last_output_grad_ = grad_output;
    if (mask_.empty()) return grad_output;  // inference / p == 0
    return hadamard(grad_output, mask_);
}

Matrix Sigmoid::forward(const Matrix& input) {
    if (input.cols() != width_)
        throw std::invalid_argument("Sigmoid::forward: width mismatch");
    Matrix out = input;
    for (float& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
    last_output_ = out;
    return out;
}

Matrix Sigmoid::backward(const Matrix& grad_output) {
    if (grad_output.rows() != last_output_.rows() ||
        grad_output.cols() != last_output_.cols())
        throw std::invalid_argument("Sigmoid::backward: gradient shape mismatch");
    last_output_grad_ = grad_output;
    Matrix gin = grad_output;
    for (std::size_t i = 0; i < gin.size(); ++i) {
        const float y = last_output_.data()[i];
        gin.data()[i] *= y * (1.0f - y);
    }
    return gin;
}

}  // namespace wifisense::nn
