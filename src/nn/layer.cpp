#include "nn/layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wifisense::nn {

namespace {
const Matrix& empty_matrix() {
    static const Matrix kEmpty;
    return kEmpty;
}
}  // namespace

const Matrix& Layer::last_output() const {
    return out_view_ ? *out_view_ : empty_matrix();
}

const Matrix& Layer::last_output_grad() const {
    return out_grad_view_ ? *out_grad_view_ : empty_matrix();
}

void Layer::cache_forward(const Matrix& input, const Matrix& output, bool cache) {
    in_view_ = cache ? &input : nullptr;
    out_view_ = cache ? &output : nullptr;
    out_grad_view_ = nullptr;
}

void Layer::require_cached_forward(const char* who) const {
    if (in_view_ == nullptr || out_view_ == nullptr)
        // wifisense-lint: allow(ipa.throw-leak) precondition guard: fires
        // only on caller API misuse, never on data content
        // wifisense-lint: allow(ipa.alloc-leak) error-text exists only on
        // the failure path ending in the allowed throw
        throw std::logic_error(std::string(who) +
                               ": no cached forward pass (was the last forward "
                               "run in inference mode?)");
}

Matrix Layer::forward(const Matrix& input) {
    shim_in_.copy_from(input);
    forward_into(shim_in_, shim_out_, /*cache=*/true);
    return shim_out_;
}

Matrix Layer::backward(const Matrix& grad_output) {
    shim_grad_out_.copy_from(grad_output);
    backward_into(shim_grad_out_, shim_grad_in_);
    return shim_grad_in_;
}

// wifisense-lint: allow-call(parameters) base default runs only for parameter-free layers (Dense overrides zero_grad), and their parameters() returns an empty vector without touching the heap
void Layer::zero_grad() {
    for (ParamView& p : parameters())
        std::fill(p.grads.begin(), p.grads.end(), 0.0f);
}

Dense::Dense(std::size_t in, std::size_t out)
    : in_(in), out_(out), w_(in, out), b_(out, 0.0f), gw_(in, out), gb_(out, 0.0f) {
    if (in == 0 || out == 0) throw std::invalid_argument("Dense: zero dimension");
}

// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
void Dense::forward_into(const Matrix& input, Matrix& output, bool cache) {
    if (input.cols() != in_)
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("Dense::forward: input width " +
                                    // wifisense-lint: allow(ipa.alloc-leak) error-text exists only on the failure path ending in the allowed throw
                                    input.shape_string() + " != " + std::to_string(in_));
    matmul_into(input, w_, output);
    add_row_vector_inplace(output, b_);
    cache_forward(input, output, cache);
}

void Dense::backward_into(const Matrix& grad_output, Matrix& grad_input) {
    require_cached_forward("Dense::backward");
    if (grad_output.rows() != in_view_->rows() || grad_output.cols() != out_)
        throw std::invalid_argument("Dense::backward: gradient shape mismatch");
    out_grad_view_ = &grad_output;

    // Accumulate (not overwrite): supports gradient accumulation across
    // micro-batches and matches optimizer semantics. With zeroed accumulators
    // (zero_grad before every step, as the trainer does) the direct
    // accumulation is bitwise identical to compute-then-add.
    matmul_tn_into(*in_view_, grad_output, gw_, /*accumulate=*/true);
    column_sums_into(grad_output, gb_, /*accumulate=*/true);

    matmul_nt_into(grad_output, w_, grad_input);
}

std::vector<ParamView> Dense::parameters() {
    return {
        {"weight", w_.data(), gw_.data()},
        {"bias", std::span<float>(b_), std::span<float>(gb_)},
    };
}

void Dense::zero_grad() {
    gw_.fill(0.0f);
    std::fill(gb_.begin(), gb_.end(), 0.0f);
}

void ReLU::forward_into(const Matrix& input, Matrix& output, bool cache) {
    if (input.cols() != width_)
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("ReLU::forward: width mismatch");
    output.copy_from(input);
    for (float& v : output.data()) v = v > 0.0f ? v : 0.0f;
    cache_forward(input, output, cache);
}

void ReLU::backward_into(const Matrix& grad_output, Matrix& grad_input) {
    require_cached_forward("ReLU::backward");
    if (grad_output.rows() != out_view_->rows() ||
        grad_output.cols() != out_view_->cols())
        throw std::invalid_argument("ReLU::backward: gradient shape mismatch");
    out_grad_view_ = &grad_output;
    grad_input.copy_from(grad_output);
    for (std::size_t i = 0; i < grad_input.size(); ++i)
        if (out_view_->data()[i] <= 0.0f) grad_input.data()[i] = 0.0f;
}

Dropout::Dropout(std::size_t width, double p, std::uint64_t seed)
    : width_(width), p_(p), rng_(seed) {
    if (p_ < 0.0 || p_ >= 1.0)
        throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

void Dropout::reserve_batch(std::size_t max_rows) {
    mask_.reserve(max_rows, width_);
}

void Dropout::forward_into(const Matrix& input, Matrix& output, bool cache) {
    if (input.cols() != width_)
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("Dropout::forward: width mismatch");
    output.copy_from(input);
    if (!training_ || p_ == 0.0) {
        mask_active_ = false;
    } else {
        std::bernoulli_distribution keep(1.0 - p_);
        const float scale = static_cast<float>(1.0 / (1.0 - p_));
        // wifisense-lint: allow(noalloc.container-growth) resize within the
        // capacity reserved by reserve_batch is allocation-free
        mask_.resize(input.rows(), input.cols());
        for (std::size_t i = 0; i < output.size(); ++i) {
            const float m = keep(rng_) ? scale : 0.0f;
            mask_.data()[i] = m;
            output.data()[i] *= m;
        }
        mask_active_ = true;
    }
    cache_forward(input, output, cache);
}

void Dropout::backward_into(const Matrix& grad_output, Matrix& grad_input) {
    require_cached_forward("Dropout::backward");
    if (grad_output.rows() != out_view_->rows() ||
        grad_output.cols() != out_view_->cols())
        throw std::invalid_argument("Dropout::backward: gradient shape mismatch");
    out_grad_view_ = &grad_output;
    grad_input.copy_from(grad_output);
    if (mask_active_) hadamard_inplace(grad_input, mask_);
}

void Sigmoid::forward_into(const Matrix& input, Matrix& output, bool cache) {
    if (input.cols() != width_)
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("Sigmoid::forward: width mismatch");
    output.copy_from(input);
    for (float& v : output.data()) v = 1.0f / (1.0f + std::exp(-v));
    cache_forward(input, output, cache);
}

void Sigmoid::backward_into(const Matrix& grad_output, Matrix& grad_input) {
    require_cached_forward("Sigmoid::backward");
    if (grad_output.rows() != out_view_->rows() ||
        grad_output.cols() != out_view_->cols())
        throw std::invalid_argument("Sigmoid::backward: gradient shape mismatch");
    out_grad_view_ = &grad_output;
    grad_input.copy_from(grad_output);
    for (std::size_t i = 0; i < grad_input.size(); ++i) {
        const float y = out_view_->data()[i];
        grad_input.data()[i] *= y * (1.0f - y);
    }
}

}  // namespace wifisense::nn
