#include "nn/init.hpp"

#include <algorithm>
#include <cmath>

namespace wifisense::nn {

void initialize(Dense& layer, Init scheme, std::mt19937_64& rng) {
    const auto fan_in = static_cast<double>(layer.input_size());
    const auto fan_out = static_cast<double>(layer.output_size());

    double limit = 0.0;
    switch (scheme) {
        case Init::kKaimingUniform:
            limit = std::sqrt(6.0 / fan_in);
            break;
        case Init::kXavierUniform:
            limit = std::sqrt(6.0 / (fan_in + fan_out));
            break;
        case Init::kZero:
            limit = 0.0;
            break;
    }

    std::uniform_real_distribution<double> dist(-limit, limit);
    for (float& w : layer.weights().data())
        w = limit == 0.0 ? 0.0f : static_cast<float>(dist(rng));
    std::fill(layer.bias().begin(), layer.bias().end(), 0.0f);
}

}  // namespace wifisense::nn
