// Post-training int8 quantization of a trained Mlp (DESIGN.md §16).
//
// Scheme: per-tensor symmetric. Each Dense layer's weights collapse to
// int8 at scale w_scale = absmax(W)/127 and are stored TRANSPOSED
// ([out x in]) so the int8 GEMM is a row-dot-row product (matmul_nt
// shape) — the layout the AVX2 maddubs-style kernel wants. Activations
// quantize on the fly at a per-layer in_scale calibrated over a held-out
// activation sweep (quantize_mlp's `calibration` matrix pushed through the
// float network) as a percentile-clipped absmax / 127: the handful of
// outlier activations saturate at +-127 instead of halving the resolution
// of everything else (see AbsHistogram in quant.cpp). Accumulation is
// int32, exact; the epilogue dequantizes with the combined scale
// in_scale * w_scale, adds the float bias, and applies the fused
// activation. Biases stay float32 — they are a rounding-error-sized
// fraction of the weight bytes and keeping them exact removes one scale
// coupling.
//
// Every arithmetic step here is either exact integer math or a scalar
// float epilogue with a backend-pinned operation order, so QuantizedMlp
// outputs are bitwise identical across kernel backends AND thread counts —
// the quantized accuracy figures gated in CI do not depend on which
// machine ran them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/tensor.hpp"

namespace wifisense::nn {

/// One quantized Dense(+fused activation) block.
struct QuantizedDenseLayer {
    std::size_t in = 0;
    std::size_t out = 0;
    kernels::Activation act = kernels::Activation::kNone;
    float in_scale = 1.0f;  ///< float input -> int8: q = round(x / in_scale)
    float w_scale = 1.0f;   ///< int8 weight -> float: w ~= q * w_scale
    std::vector<std::int8_t> weights;  ///< [out x in], transposed
    std::vector<float> bias;           ///< [out], float32
};

/// Inference-only int8 network: a stack of QuantizedDenseLayer blocks plus
/// the caller-owned-workspace machinery of the float Mlp (reserve once,
/// forward allocation-free thereafter).
class QuantizedMlp {
public:
    QuantizedMlp() = default;

    /// Assemble from explicit layer records (the serialize v3 loader);
    /// validates the chain (each layer's `in` must match the predecessor's
    /// `out`, buffer sizes must match the shapes).
    static QuantizedMlp from_layers(std::vector<QuantizedDenseLayer> layers);

    const std::vector<QuantizedDenseLayer>& layers() const { return layers_; }

    std::size_t input_size() const {
        return layers_.empty() ? 0 : layers_.front().in;
    }
    std::size_t output_size() const {
        return layers_.empty() ? 0 : layers_.back().out;
    }

    /// Stored parameter scalars (int8 weights + float biases).
    std::size_t parameter_count() const;

    /// Serialized weight size in bytes: 1 byte per weight, 4 per bias —
    /// the deployment-footprint figure to set against Mlp::weight_bytes().
    std::size_t weight_bytes() const;

    /// Grow the workspace so batches of up to `max_rows` rows run
    /// allocation-free.
    void reserve_workspace(std::size_t max_rows);

    /// Batch staging slot (same contract as Mlp::input_buffer()).
    Matrix& input_buffer() { return ws_input_; }

    /// Run the network over `input` ([n x input_size]); returns a view of
    /// the float output living in the workspace, invalidated by the next
    /// forward_ws()/reserve_workspace() call. Allocation-free once the
    /// workspace covers input.rows().
    const Matrix& forward_ws(const Matrix& input);

private:
    std::vector<QuantizedDenseLayer> layers_;
    Matrix ws_input_;
    Matrix ws_a_, ws_b_;                // ping-pong float activations
    std::vector<std::int8_t> ws_q_;     // quantized input rows
    std::vector<std::int32_t> ws_acc_;  // int32 GEMM accumulators
    std::size_t ws_rows_ = 0;           ///< reserved batch capacity (rows)

    friend QuantizedMlp quantize_mlp(const Mlp& net, const Matrix& calibration);
};

/// Post-training quantization of a trained float network. `net` must be a
/// Dense/ReLU/Sigmoid/Dropout stack (Dropout is dropped — identity at
/// inference); `calibration` is a held-out batch of inputs ([n x
/// input_size], n >= 1) swept through the float network to calibrate the
/// per-layer activation scales. The float network is not modified.
QuantizedMlp quantize_mlp(const Mlp& net, const Matrix& calibration);

/// Batched inference drivers mirroring the float predict/predict_binary.
Matrix predict(QuantizedMlp& net, const Matrix& inputs,
               std::size_t batch_size = 4096);
std::vector<int> predict_binary(QuantizedMlp& net, const Matrix& inputs,
                                std::size_t batch_size = 4096);

}  // namespace wifisense::nn
