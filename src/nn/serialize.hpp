// Binary model persistence (save/load of the Dense/ReLU/Sigmoid stack).
//
// Format (little-endian):
//   magic "WSNN" | u32 version | u64 layer_count | per layer:
//     u8 kind (0=Dense,1=ReLU,2=Sigmoid) | u64 in | u64 out |
//     [Dense only] float32 weights (in*out, row-major) | float32 bias (out)
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.hpp"

namespace wifisense::nn {

void save_mlp(const Mlp& net, std::ostream& os);
void save_mlp(const Mlp& net, const std::string& path);

/// Throws std::runtime_error on malformed input.
Mlp load_mlp(std::istream& is);
Mlp load_mlp(const std::string& path);

}  // namespace wifisense::nn
