// Binary model persistence (save/load of the Dense/ReLU/Sigmoid stack).
//
// Format v2 (little-endian):
//   magic "WSNN" | u32 version | u64 payload_bytes | payload | u32 crc32
// where crc32 is the CRC-32 (IEEE, reflected 0xEDB88320) of the payload and
// the payload is:
//   u64 layer_count | per layer:
//     u8 kind (0=Dense,1=ReLU,2=Sigmoid,3=Dropout) | u64 in | u64 out |
//     [Dense] float32 weights (in*out, row-major) | float32 bias (out)
//     [Dropout] f64 rate
// The declared payload size catches truncation before parsing; the CRC
// catches in-place corruption (a flipped bit in a checkpoint otherwise loads
// silently into garbage weights). Version-1 streams (no size/CRC framing,
// payload follows the version word directly) still load.
//
// Format v3 carries quantized int8 models under the same
// magic/size/CRC framing:
//   u32 version=3 | u64 payload_bytes | payload | u32 crc32
// with payload:
//   u8 model_kind (1 = int8 QuantizedMlp) | u64 layer_count | per layer:
//     u64 in | u64 out | u8 activation (kernels::Activation) |
//     f32 in_scale | f32 w_scale |
//     int8 weights (out*in, transposed [out x in]) | float32 bias (out)
// Float loaders reject v3 streams (and the quantized loader rejects v1/v2)
// with kFormatMismatch naming the other entry point — a quantized
// checkpoint must never half-load as float garbage or vice versa.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "nn/mlp.hpp"
#include "nn/quant.hpp"

namespace wifisense::nn {

void save_mlp(const Mlp& net, std::ostream& os);
void save_mlp(const Mlp& net, const std::string& path);

/// Typed-error variant. Distinguishes:
///   kFormatMismatch  wrong magic / unsupported version (incl. quantized v3)
///   kTruncated       stream ends before the declared payload
///   kCorruptData     CRC mismatch or malformed layer records
///   kNotFound        unopenable path
[[nodiscard]] common::Result<Mlp> try_load_mlp(std::istream& is);
[[nodiscard]] common::Result<Mlp> try_load_mlp(const std::string& path);

/// Throwing wrappers (std::runtime_error with the same diagnostic).
Mlp load_mlp(std::istream& is);
Mlp load_mlp(const std::string& path);

/// Quantized (format v3) counterparts. Same error taxonomy; float v1/v2
/// streams come back kFormatMismatch pointing at load_mlp.
void save_quantized_mlp(const QuantizedMlp& net, std::ostream& os);
void save_quantized_mlp(const QuantizedMlp& net, const std::string& path);

[[nodiscard]] common::Result<QuantizedMlp> try_load_quantized_mlp(std::istream& is);
[[nodiscard]] common::Result<QuantizedMlp> try_load_quantized_mlp(const std::string& path);

QuantizedMlp load_quantized_mlp(std::istream& is);
QuantizedMlp load_quantized_mlp(const std::string& path);

}  // namespace wifisense::nn
