// Binary model persistence (save/load of the Dense/ReLU/Sigmoid stack).
//
// Format v2 (little-endian):
//   magic "WSNN" | u32 version | u64 payload_bytes | payload | u32 crc32
// where crc32 is the CRC-32 (IEEE, reflected 0xEDB88320) of the payload and
// the payload is:
//   u64 layer_count | per layer:
//     u8 kind (0=Dense,1=ReLU,2=Sigmoid,3=Dropout) | u64 in | u64 out |
//     [Dense] float32 weights (in*out, row-major) | float32 bias (out)
//     [Dropout] f64 rate
// The declared payload size catches truncation before parsing; the CRC
// catches in-place corruption (a flipped bit in a checkpoint otherwise loads
// silently into garbage weights). Version-1 streams (no size/CRC framing,
// payload follows the version word directly) still load.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "nn/mlp.hpp"

namespace wifisense::nn {

void save_mlp(const Mlp& net, std::ostream& os);
void save_mlp(const Mlp& net, const std::string& path);

/// Typed-error variant. Distinguishes:
///   kFormatMismatch  wrong magic / unsupported version
///   kTruncated       stream ends before the declared payload
///   kCorruptData     CRC mismatch or malformed layer records
///   kNotFound        unopenable path
[[nodiscard]] common::Result<Mlp> try_load_mlp(std::istream& is);
[[nodiscard]] common::Result<Mlp> try_load_mlp(const std::string& path);

/// Throwing wrappers (std::runtime_error with the same diagnostic).
Mlp load_mlp(std::istream& is);
Mlp load_mlp(const std::string& path);

}  // namespace wifisense::nn
