// Weight initialization schemes.
#pragma once

#include <random>

#include "nn/layer.hpp"

namespace wifisense::nn {

enum class Init {
    kKaimingUniform,  ///< He et al., suited to ReLU stacks (our default)
    kXavierUniform,   ///< Glorot & Bengio
    kZero,            ///< degenerate; useful in tests only
};

/// Initialize a Dense layer's weights in place; bias is zeroed.
void initialize(Dense& layer, Init scheme, std::mt19937_64& rng);

}  // namespace wifisense::nn
