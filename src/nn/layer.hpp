// Layer abstraction with explicit forward/backward passes.
//
// The core compute API is destination-passing: forward_into/backward_into
// write into caller-owned matrices (workspace slots of the owning Mlp), so a
// steady-state training step performs zero heap allocations. Layers cache
// *non-owning views* of their most recent input/output and, after a backward
// pass, the gradient of the scalar objective with respect to that output.
// Those caches are exactly the A^(k) and dY/dA^(k) terms of the Grad-CAM
// equations (paper Eq. 5-6), so the XAI module can read them without
// re-running anything — and without the per-layer full-batch copies the
// pre-workspace implementation paid for them.
//
// View lifetime: the cached views point at the matrices passed to
// forward_into/backward_into. The caller (Mlp's workspace, or the legacy
// value-returning shims' own buffers) must keep those alive until the next
// forward pass or backward() completes. See DESIGN.md, "Memory model".
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace wifisense::nn {

/// Mutable view over one parameter tensor and its gradient accumulator.
struct ParamView {
    std::string name;
    std::span<float> values;
    std::span<float> grads;
};

/// Coarse layer identity for structure-aware walkers — the Mlp fused
/// inference path and the post-training quantizer pattern-match on this
/// instead of dynamic_cast chains.
enum class LayerKind : std::uint8_t {
    kDense = 0,
    kReLU = 1,
    kSigmoid = 2,
    kDropout = 3,
    kOther = 4,
};

class Layer {
public:
    virtual ~Layer() = default;

    /// Compute the layer output for a batch (rows = samples) into `output`
    /// (resized by the layer; allocation-free within reserved capacity).
    /// `output` must not alias `input`. With `cache`, records non-owning
    /// views of input/output as required by backward_into() and Grad-CAM;
    /// without it (inference mode) the caches are cleared and a later
    /// backward_into() throws.
    virtual void forward_into(const Matrix& input, Matrix& output, bool cache) = 0;

    /// Given dObjective/dOutput, accumulate parameter gradients and write
    /// dObjective/dInput into `grad_input` (resized by the layer). Must be
    /// called after a cached forward_into() on the same batch; the views
    /// recorded there must still be alive. `grad_input` must not alias
    /// `grad_output`.
    virtual void backward_into(const Matrix& grad_output, Matrix& grad_input) = 0;

    /// Value-returning convenience shims over the _into core (one input and
    /// one output copy each; always cache). Standalone layer use only — the
    /// Mlp drives forward_into/backward_into directly through its workspace.
    Matrix forward(const Matrix& input);
    Matrix backward(const Matrix& grad_output);

    /// Parameter/gradient views (empty for activations).
    virtual std::vector<ParamView> parameters() { return {}; }

    virtual std::string name() const = 0;
    virtual LayerKind kind() const { return LayerKind::kOther; }
    virtual std::size_t input_size() const = 0;
    virtual std::size_t output_size() const = 0;

    /// Switch between training and inference behaviour (dropout etc.).
    virtual void set_training(bool training) { training_ = training; }
    bool training_mode() const { return training_; }

    /// Pre-allocate layer-internal scratch (e.g. the dropout mask) for
    /// batches of up to `max_rows` samples. No-op for layers without scratch.
    virtual void reserve_batch(std::size_t /*max_rows*/) {}

    /// Activation cache A^(k) from the latest cached forward pass (empty
    /// matrix when the last pass ran in inference mode).
    const Matrix& last_output() const;
    /// Gradient cache dY/dA^(k) from the latest backward pass (empty matrix
    /// before any backward pass).
    const Matrix& last_output_grad() const;

    /// Reset all parameter gradient accumulators to zero. The default walks
    /// parameters(); parameterized layers override it to avoid building the
    /// view vector (zero_grad runs every training step and must not allocate).
    virtual void zero_grad();

    /// Drop the cached forward/backward views, exactly as an uncached
    /// forward_into() would. The Mlp fused inference path bypasses
    /// forward_into() entirely and calls this on the layers it skips, so
    /// Grad-CAM and backward_into() observe the same "last pass was
    /// inference" state either way.
    void clear_forward_cache() {
        in_view_ = out_view_ = out_grad_view_ = nullptr;
    }

protected:
    /// Record (or clear, when !cache) the forward views; resets the output
    /// gradient view, which backward_into() re-records.
    void cache_forward(const Matrix& input, const Matrix& output, bool cache);

    /// Throws std::logic_error unless a cached forward pass is on record.
    void require_cached_forward(const char* who) const;

    const Matrix* in_view_ = nullptr;        ///< input of the latest cached forward
    const Matrix* out_view_ = nullptr;       ///< output of the latest cached forward
    const Matrix* out_grad_view_ = nullptr;  ///< grad_output of the latest backward
    bool training_ = true;

private:
    // Owned buffers backing the value-returning shims (persist the views).
    Matrix shim_in_, shim_out_, shim_grad_out_, shim_grad_in_;
};

/// Fully connected layer: y = x W + b, W is [in x out].
class Dense : public Layer {
public:
    Dense(std::size_t in, std::size_t out);

    void forward_into(const Matrix& input, Matrix& output, bool cache) override;
    void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
    std::vector<ParamView> parameters() override;
    void zero_grad() override;
    std::string name() const override { return "Dense"; }
    LayerKind kind() const override { return LayerKind::kDense; }
    std::size_t input_size() const override { return in_; }
    std::size_t output_size() const override { return out_; }

    /// Trainable parameter count: in*out + out.
    std::size_t parameter_count() const { return in_ * out_ + out_; }

    Matrix& weights() { return w_; }
    const Matrix& weights() const { return w_; }
    std::vector<float>& bias() { return b_; }
    const std::vector<float>& bias() const { return b_; }

private:
    std::size_t in_;
    std::size_t out_;
    Matrix w_;                  // [in x out]
    std::vector<float> b_;      // [out]
    Matrix gw_;                 // gradient accumulator for w_
    std::vector<float> gb_;     // gradient accumulator for b_
};

/// Rectified linear unit, elementwise max(0, x).
class ReLU : public Layer {
public:
    explicit ReLU(std::size_t width) : width_(width) {}

    void forward_into(const Matrix& input, Matrix& output, bool cache) override;
    void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
    std::string name() const override { return "ReLU"; }
    LayerKind kind() const override { return LayerKind::kReLU; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }

private:
    std::size_t width_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); at inference the layer
/// is the identity. Deterministic given the constructor seed.
class Dropout : public Layer {
public:
    Dropout(std::size_t width, double p, std::uint64_t seed = 42);

    void forward_into(const Matrix& input, Matrix& output, bool cache) override;
    void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
    std::string name() const override { return "Dropout"; }
    LayerKind kind() const override { return LayerKind::kDropout; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }
    void reserve_batch(std::size_t max_rows) override;

    double rate() const { return p_; }

private:
    std::size_t width_;
    double p_;
    std::mt19937_64 rng_;
    Matrix mask_;
    bool mask_active_ = false;  ///< mask_ holds the latest forward's mask
};

/// Logistic sigmoid, elementwise 1/(1+exp(-x)).
class Sigmoid : public Layer {
public:
    explicit Sigmoid(std::size_t width) : width_(width) {}

    void forward_into(const Matrix& input, Matrix& output, bool cache) override;
    void backward_into(const Matrix& grad_output, Matrix& grad_input) override;
    std::string name() const override { return "Sigmoid"; }
    LayerKind kind() const override { return LayerKind::kSigmoid; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }

private:
    std::size_t width_;
};

}  // namespace wifisense::nn
