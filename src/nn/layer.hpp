// Layer abstraction with explicit forward/backward passes.
//
// Every layer caches its most recent output and, after a backward pass, the
// gradient of the scalar objective with respect to that output. Those two
// caches are exactly the A^(k) and dY/dA^(k) terms of the Grad-CAM equations
// (paper Eq. 5-6), so the XAI module can read them without re-running
// anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace wifisense::nn {

/// Mutable view over one parameter tensor and its gradient accumulator.
struct ParamView {
    std::string name;
    std::span<float> values;
    std::span<float> grads;
};

class Layer {
public:
    virtual ~Layer() = default;

    /// Compute the layer output for a batch (rows = samples).
    /// Caches input/output as required by backward() and Grad-CAM.
    virtual Matrix forward(const Matrix& input) = 0;

    /// Given dObjective/dOutput, accumulate parameter gradients and return
    /// dObjective/dInput. Must be called after forward() on the same batch.
    virtual Matrix backward(const Matrix& grad_output) = 0;

    /// Parameter/gradient views (empty for activations).
    virtual std::vector<ParamView> parameters() { return {}; }

    virtual std::string name() const = 0;
    virtual std::size_t input_size() const = 0;
    virtual std::size_t output_size() const = 0;

    /// Switch between training and inference behaviour (dropout etc.).
    /// No-op for deterministic layers.
    virtual void set_training(bool) {}

    /// Activation cache A^(k) from the latest forward pass.
    const Matrix& last_output() const { return last_output_; }
    /// Gradient cache dY/dA^(k) from the latest backward pass.
    const Matrix& last_output_grad() const { return last_output_grad_; }

    /// Reset all parameter gradient accumulators to zero.
    void zero_grad();

protected:
    Matrix last_output_;
    Matrix last_output_grad_;
};

/// Fully connected layer: y = x W + b, W is [in x out].
class Dense : public Layer {
public:
    Dense(std::size_t in, std::size_t out);

    Matrix forward(const Matrix& input) override;
    Matrix backward(const Matrix& grad_output) override;
    std::vector<ParamView> parameters() override;
    std::string name() const override { return "Dense"; }
    std::size_t input_size() const override { return in_; }
    std::size_t output_size() const override { return out_; }

    /// Trainable parameter count: in*out + out.
    std::size_t parameter_count() const { return in_ * out_ + out_; }

    Matrix& weights() { return w_; }
    const Matrix& weights() const { return w_; }
    std::vector<float>& bias() { return b_; }
    const std::vector<float>& bias() const { return b_; }

private:
    std::size_t in_;
    std::size_t out_;
    Matrix w_;                  // [in x out]
    std::vector<float> b_;      // [out]
    Matrix gw_;                 // gradient accumulator for w_
    std::vector<float> gb_;     // gradient accumulator for b_
    Matrix last_input_;
};

/// Rectified linear unit, elementwise max(0, x).
class ReLU : public Layer {
public:
    explicit ReLU(std::size_t width) : width_(width) {}

    Matrix forward(const Matrix& input) override;
    Matrix backward(const Matrix& grad_output) override;
    std::string name() const override { return "ReLU"; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }

private:
    std::size_t width_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p); at inference the layer
/// is the identity. Deterministic given the constructor seed.
class Dropout : public Layer {
public:
    Dropout(std::size_t width, double p, std::uint64_t seed = 42);

    Matrix forward(const Matrix& input) override;
    Matrix backward(const Matrix& grad_output) override;
    std::string name() const override { return "Dropout"; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }
    void set_training(bool training) override { training_ = training; }

    double rate() const { return p_; }
    bool training_mode() const { return training_; }

private:
    std::size_t width_;
    double p_;
    bool training_ = true;
    std::mt19937_64 rng_;
    Matrix mask_;
};

/// Logistic sigmoid, elementwise 1/(1+exp(-x)).
class Sigmoid : public Layer {
public:
    explicit Sigmoid(std::size_t width) : width_(width) {}

    Matrix forward(const Matrix& input) override;
    Matrix backward(const Matrix& grad_output) override;
    std::string name() const override { return "Sigmoid"; }
    std::size_t input_size() const override { return width_; }
    std::size_t output_size() const override { return width_; }

private:
    std::size_t width_;
};

}  // namespace wifisense::nn
