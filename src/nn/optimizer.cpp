#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace wifisense::nn {

AdamW::AdamW(AdamWConfig cfg) : cfg_(cfg) {
    if (cfg_.lr <= 0.0) throw std::invalid_argument("AdamW: lr must be positive");
    if (cfg_.beta1 < 0.0 || cfg_.beta1 >= 1.0 || cfg_.beta2 < 0.0 || cfg_.beta2 >= 1.0)
        throw std::invalid_argument("AdamW: betas must be in [0,1)");
}

void AdamW::step(std::vector<ParamView>& params) {
    if (m_.empty()) {
        // First-step state warmup: allocates the moment buffers once; every
        // later step reuses this storage untouched, keeping the steady-state
        // training loop heap-free (tests/test_nn_workspace.cpp).
        // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
        m_.resize(params.size());
        // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
        v_.resize(params.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
            // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
            m_[i].assign(params[i].values.size(), 0.0f);
            // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
            v_[i].assign(params[i].values.size(), 0.0f);
        }
    }
    if (m_.size() != params.size())
        throw std::invalid_argument("AdamW::step: parameter set changed");

    ++t_;
    const double bc1 = 1.0 - std::pow(cfg_.beta1, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(cfg_.beta2, static_cast<double>(t_));

    for (std::size_t i = 0; i < params.size(); ++i) {
        ParamView& p = params[i];
        if (p.values.size() != m_[i].size())
            throw std::invalid_argument("AdamW::step: parameter size changed");
        const bool decay_this = cfg_.decay_bias || p.name != "bias";
        for (std::size_t j = 0; j < p.values.size(); ++j) {
            const double g = static_cast<double>(p.grads[j]);
            const double m = cfg_.beta1 * static_cast<double>(m_[i][j]) +
                             (1.0 - cfg_.beta1) * g;
            const double v = cfg_.beta2 * static_cast<double>(v_[i][j]) +
                             (1.0 - cfg_.beta2) * g * g;
            m_[i][j] = static_cast<float>(m);
            v_[i][j] = static_cast<float>(v);
            const double mhat = m / bc1;
            const double vhat = v / bc2;
            double w = static_cast<double>(p.values[j]);
            w -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
            if (decay_this) w -= cfg_.lr * cfg_.weight_decay * w;
            p.values[j] = static_cast<float>(w);
        }
    }
}

Sgd::Sgd(SgdConfig cfg) : cfg_(cfg) {
    if (cfg_.lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
}

void Sgd::step(std::vector<ParamView>& params) {
    if (velocity_.empty()) {
        // First-step state warmup: see AdamW::step above.
        // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
        velocity_.resize(params.size());
        for (std::size_t i = 0; i < params.size(); ++i)
            // wifisense-lint: allow(noalloc.container-growth) cold-path warmup
            velocity_[i].assign(params[i].values.size(), 0.0f);
    }
    if (velocity_.size() != params.size())
        throw std::invalid_argument("Sgd::step: parameter set changed");

    for (std::size_t i = 0; i < params.size(); ++i) {
        ParamView& p = params[i];
        for (std::size_t j = 0; j < p.values.size(); ++j) {
            double g = static_cast<double>(p.grads[j]) +
                       cfg_.weight_decay * static_cast<double>(p.values[j]);
            if (cfg_.momentum != 0.0) {
                const double vel =
                    cfg_.momentum * static_cast<double>(velocity_[i][j]) + g;
                velocity_[i][j] = static_cast<float>(vel);
                g = vel;
            }
            p.values[j] = static_cast<float>(static_cast<double>(p.values[j]) -
                                             cfg_.lr * g);
        }
    }
}

}  // namespace wifisense::nn
