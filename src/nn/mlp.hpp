// The paper's model: a lightweight four-Dense-layer MLP with ReLU between
// layers (Section IV-B). With the paper's per-layer parameter counts
// (8,320 / 33,024 / ~32,896 / 129) the hidden widths resolve to
// 128 -> 256 -> 128 with a single logit output; `paper_mlp()` builds exactly
// that for any input width.
//
// The class is a generic sequential container, so tests, ablations and the
// regression head (2 outputs for temperature+humidity, Table V) reuse it.
//
// Memory model: every Mlp owns a Workspace — per-layer activation and
// gradient buffers plus a batch input slot — sized once from the largest
// batch seen (or reserve_workspace()). The zero-allocation API
// (forward_ws/output_grad_buffer/backward_ws) runs a full training step
// without touching the heap once the workspace is warm; the value-returning
// forward/backward remain as thin copying shims. Buffers are reused across
// batches and epochs, never shared across Mlp instances — clone the network
// before driving it from concurrent tasks (see core/experiments.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace wifisense::nn {

class Mlp {
public:
    Mlp() = default;

    /// Build Dense(+ReLU) stack: dims = {in, h1, ..., out}. The final Dense
    /// has no activation (losses are computed on logits / raw outputs).
    Mlp(std::vector<std::size_t> dims, Init scheme, std::mt19937_64& rng);

    /// Forward a batch [n x input_size] -> [n x output_size]. Copying shim
    /// over forward_ws(): the input is staged into the workspace (so the
    /// caller's matrix may die) and the result is returned by value.
    /// Activation caching follows the training/inference mode.
    Matrix forward(const Matrix& input);

    /// Backward from dObjective/dOutput; accumulates parameter gradients and
    /// stores per-layer activation-gradient views for Grad-CAM. Returns
    /// dObjective/dInput (the input-feature gradient). Copying shim over
    /// backward_ws(); requires a cached (training-mode) forward.
    Matrix backward(const Matrix& grad_output);

    // -- Zero-allocation hot path -------------------------------------------
    //
    // Contract: `input` must stay alive until the next forward or the end of
    // the matching backward_ws() — layers keep non-owning views of it. The
    // returned references point into the workspace and are invalidated by
    // the next forward_ws()/reserve_workspace() call.

    /// Grow the workspace so batches of up to `max_rows` run allocation-free.
    /// Gradient buffers are reserved lazily by output_grad_buffer(), so
    /// inference-only networks never pay for them.
    void reserve_workspace(std::size_t max_rows);

    /// Batch staging slot sized for the reserved workspace; callers gather
    /// or slice batches directly into it (trainer, predict).
    Matrix& input_buffer() { return ws_input_; }

    /// Run the network over `input`, writing activations into workspace
    /// slots; returns a view of the output activation. With `cache`, layers
    /// record the views Grad-CAM and backward_ws() read; without it
    /// (inference) all caches are cleared.
    const Matrix& forward_ws(const Matrix& input, bool cache);

    /// The dObjective/dOutput slot for the latest forward_ws() batch,
    /// resized to the output's shape (contents unspecified — fill it, e.g.
    /// via Loss::compute_into, before backward_ws()).
    Matrix& output_grad_buffer();

    /// Backpropagate from output_grad_buffer(); returns a view of
    /// dObjective/dInput. Requires a cached forward_ws() on this batch.
    const Matrix& backward_ws();

    void zero_grad();

    /// Propagate training/inference mode to every layer (dropout, activation
    /// caching). Networks start in training mode.
    void set_training(bool training);
    bool training_mode() const { return training_; }

    /// Flat list of parameter views across all layers, in layer order.
    std::vector<ParamView> parameters();

    /// Total trainable scalar count.
    std::size_t parameter_count() const;

    /// Serialized weight size in bytes (float32), i.e. the "model size"
    /// figure of Section IV-B.
    std::size_t weight_bytes() const { return parameter_count() * sizeof(float); }

    std::size_t input_size() const;
    std::size_t output_size() const;

    const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }
    std::vector<std::unique_ptr<Layer>>& layers() { return layers_; }

    /// Hidden-width spec used to build this network (empty if assembled
    /// manually); retained for serialization.
    const std::vector<std::size_t>& dims() const { return dims_; }

    /// Deep copy (layers are value-owned behind unique_ptr). The clone gets
    /// a fresh, empty workspace.
    Mlp clone() const;

private:
    void reserve_grad_buffers();

    std::vector<std::unique_ptr<Layer>> layers_;
    std::vector<std::size_t> dims_;

    // Workspace: ws_act_[i] is the output of layers_[i]; ws_grad_[i] is
    // dObjective/d ws_act_[i]; ws_input_grad_ is dObjective/d input.
    Matrix ws_input_;
    std::vector<Matrix> ws_act_;
    std::vector<Matrix> ws_grad_;
    Matrix ws_input_grad_;
    std::size_t ws_rows_ = 0;       ///< reserved batch capacity (rows)
    std::size_t ws_grad_rows_ = 0;  ///< reserved gradient-buffer capacity
    const Matrix* fwd_input_ = nullptr;  ///< input of the latest cached forward
    bool training_ = true;
};

/// The architecture of Section IV-B: in -> 128 -> 256 -> 128 -> 1.
/// For in = 64 (CSI-only) this is 74,369 parameters; the paper's stated
/// total (77,881) is internally inconsistent with its own per-layer counts,
/// so we follow the per-layer counts.
Mlp paper_mlp(std::size_t input_size, std::mt19937_64& rng);

/// Regression variant for Table V: in -> 128 -> 256 -> 128 -> outputs.
Mlp paper_regression_mlp(std::size_t input_size, std::size_t outputs,
                         std::mt19937_64& rng);

}  // namespace wifisense::nn
