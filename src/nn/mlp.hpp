// The paper's model: a lightweight four-Dense-layer MLP with ReLU between
// layers (Section IV-B). With the paper's per-layer parameter counts
// (8,320 / 33,024 / ~32,896 / 129) the hidden widths resolve to
// 128 -> 256 -> 128 with a single logit output; `paper_mlp()` builds exactly
// that for any input width.
//
// The class is a generic sequential container, so tests, ablations and the
// regression head (2 outputs for temperature+humidity, Table V) reuse it.
#pragma once

#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "nn/tensor.hpp"

namespace wifisense::nn {

class Mlp {
public:
    Mlp() = default;

    /// Build Dense(+ReLU) stack: dims = {in, h1, ..., out}. The final Dense
    /// has no activation (losses are computed on logits / raw outputs).
    Mlp(std::vector<std::size_t> dims, Init scheme, std::mt19937_64& rng);

    /// Forward a batch [n x input_size] -> [n x output_size].
    Matrix forward(const Matrix& input);

    /// Backward from dObjective/dOutput; accumulates parameter gradients and
    /// stores per-layer activation gradients for Grad-CAM. Returns
    /// dObjective/dInput (the input-feature gradient).
    Matrix backward(const Matrix& grad_output);

    void zero_grad();

    /// Propagate training/inference mode to every layer (dropout etc.).
    void set_training(bool training);

    /// Flat list of parameter views across all layers, in layer order.
    std::vector<ParamView> parameters();

    /// Total trainable scalar count.
    std::size_t parameter_count() const;

    /// Serialized weight size in bytes (float32), i.e. the "model size"
    /// figure of Section IV-B.
    std::size_t weight_bytes() const { return parameter_count() * sizeof(float); }

    std::size_t input_size() const;
    std::size_t output_size() const;

    const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }
    std::vector<std::unique_ptr<Layer>>& layers() { return layers_; }

    /// Hidden-width spec used to build this network (empty if assembled
    /// manually); retained for serialization.
    const std::vector<std::size_t>& dims() const { return dims_; }

    /// Deep copy (layers are value-owned behind unique_ptr).
    Mlp clone() const;

private:
    std::vector<std::unique_ptr<Layer>> layers_;
    std::vector<std::size_t> dims_;
};

/// The architecture of Section IV-B: in -> 128 -> 256 -> 128 -> 1.
/// For in = 64 (CSI-only) this is 74,369 parameters; the paper's stated
/// total (77,881) is internally inconsistent with its own per-layer counts,
/// so we follow the per-layer counts.
Mlp paper_mlp(std::size_t input_size, std::mt19937_64& rng);

/// Regression variant for Table V: in -> 128 -> 256 -> 128 -> outputs.
Mlp paper_regression_mlp(std::size_t input_size, std::size_t outputs,
                         std::mt19937_64& rng);

}  // namespace wifisense::nn
