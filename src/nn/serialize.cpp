#include "nn/serialize.hpp"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"

namespace wifisense::nn {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

constexpr char kMagic[4] = {'W', 'S', 'N', 'N'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kQuantVersion = 3;
constexpr std::uint8_t kModelKindQuantizedInt8 = 1;
/// Hard ceiling on a plausible payload (the paper MLP is ~0.5 MB); rejects
/// garbage size words before any allocation.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class LayerKind : std::uint8_t { kDense = 0, kReLU = 1, kSigmoid = 2, kDropout = 3 };

template <class T>
void write_pod(std::ostream& os, const T& value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!is) throw std::runtime_error("load_mlp: truncated stream");
    return value;
}

/// CRC-32 (IEEE 802.3) — the shared common/crc32 implementation, so the
/// model containers stay bit-compatible with the telemetry wire frames and
/// standard tooling.
std::uint32_t crc32(const char* data, std::size_t n) {
    return common::crc32(data, n);
}

/// Serializes `u64 layer_count | layers...` (the payload shared by v1/v2).
void write_layers(const Mlp& net, std::ostream& os) {
    write_pod(os, static_cast<std::uint64_t>(net.layers().size()));
    for (const auto& layer : net.layers()) {
        const auto in = static_cast<std::uint64_t>(layer->input_size());
        const auto out = static_cast<std::uint64_t>(layer->output_size());
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kDense));
            write_pod(os, in);
            write_pod(os, out);
            const auto w = dense->weights().data();
            os.write(reinterpret_cast<const char*>(w.data()),
                     static_cast<std::streamsize>(w.size() * sizeof(float)));
            os.write(reinterpret_cast<const char*>(dense->bias().data()),
                     static_cast<std::streamsize>(dense->bias().size() * sizeof(float)));
        } else if (dynamic_cast<const ReLU*>(layer.get()) != nullptr) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kReLU));
            write_pod(os, in);
            write_pod(os, out);
        } else if (dynamic_cast<const Sigmoid*>(layer.get()) != nullptr) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kSigmoid));
            write_pod(os, in);
            write_pod(os, out);
        } else if (const auto* drop = dynamic_cast<const Dropout*>(layer.get())) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kDropout));
            write_pod(os, in);
            write_pod(os, out);
            write_pod(os, drop->rate());
        } else {
            throw std::runtime_error("save_mlp: unknown layer type");
        }
    }
}

/// Parses the layer records (after layer_count). Throws std::runtime_error
/// on malformed content; the caller maps that to kCorruptData.
Mlp read_layers(std::istream& is, std::uint64_t layer_count) {
    Mlp net;
    for (std::uint64_t i = 0; i < layer_count; ++i) {
        const auto kind = static_cast<LayerKind>(read_pod<std::uint8_t>(is));
        const auto in = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
        const auto out = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
        if (in == 0 || out == 0 || in > (1u << 20) || out > (1u << 20))
            throw std::runtime_error("load_mlp: implausible layer shape");
        switch (kind) {
            case LayerKind::kDense: {
                auto dense = std::make_unique<Dense>(in, out);
                auto w = dense->weights().data();
                is.read(reinterpret_cast<char*>(w.data()),
                        static_cast<std::streamsize>(w.size() * sizeof(float)));
                is.read(reinterpret_cast<char*>(dense->bias().data()),
                        static_cast<std::streamsize>(dense->bias().size() * sizeof(float)));
                if (!is) throw std::runtime_error("load_mlp: truncated weights");
                net.layers().push_back(std::move(dense));
                break;
            }
            case LayerKind::kReLU:
                net.layers().push_back(std::make_unique<ReLU>(in));
                break;
            case LayerKind::kSigmoid:
                net.layers().push_back(std::make_unique<Sigmoid>(in));
                break;
            case LayerKind::kDropout: {
                const auto rate = read_pod<double>(is);
                auto drop = std::make_unique<Dropout>(in, rate);
                drop->set_training(false);  // models load in inference mode
                net.layers().push_back(std::move(drop));
                break;
            }
            default:
                throw std::runtime_error("load_mlp: unknown layer kind");
        }
    }
    return net;
}

}  // namespace

void save_mlp(const Mlp& net, std::ostream& os) {
    std::ostringstream payload_os(std::ios::binary);
    write_layers(net, payload_os);
    const std::string payload = payload_os.str();

    os.write(kMagic, sizeof(kMagic));
    write_pod(os, kVersion);
    write_pod(os, static_cast<std::uint64_t>(payload.size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    write_pod(os, crc32(payload.data(), payload.size()));
    if (!os) throw std::runtime_error("save_mlp: write failure");
}

void save_mlp(const Mlp& net, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("save_mlp: cannot open " + path);
    save_mlp(net, os);
}

[[nodiscard]] Result<Mlp> try_load_mlp(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is)
        return Status(StatusCode::kTruncated, "load_mlp: truncated header");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return Status(StatusCode::kFormatMismatch, "load_mlp: bad magic");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!is)
        return Status(StatusCode::kTruncated, "load_mlp: truncated header");

    try {
        if (version == 1) {
            // Legacy framing: layer records follow the version word directly,
            // no size or checksum. Still loadable, just unprotected.
            const auto layer_count = read_pod<std::uint64_t>(is);
            if (layer_count > 1024)
                throw std::runtime_error("load_mlp: implausible layer count");
            return read_layers(is, layer_count);
        }
        if (version == kQuantVersion)
            return Status(StatusCode::kFormatMismatch,
                          "load_mlp: quantized (v3) checkpoint — use "
                          "load_quantized_mlp");
        if (version != kVersion)
            return Status(StatusCode::kFormatMismatch,
                          "load_mlp: unsupported version " +
                              std::to_string(version));

        std::uint64_t payload_bytes = 0;
        is.read(reinterpret_cast<char*>(&payload_bytes), sizeof(payload_bytes));
        if (!is)
            return Status(StatusCode::kTruncated, "load_mlp: truncated header");
        if (payload_bytes < sizeof(std::uint64_t) ||
            payload_bytes > kMaxPayloadBytes)
            return Status(StatusCode::kCorruptData,
                          "load_mlp: implausible payload size " +
                              std::to_string(payload_bytes));

        std::string payload(payload_bytes, '\0');
        is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
        if (!is)
            return Status(StatusCode::kTruncated,
                          "load_mlp: truncated payload (declared " +
                              std::to_string(payload_bytes) + " bytes, got " +
                              std::to_string(is.gcount()) + ")");
        std::uint32_t stored_crc = 0;
        is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
        if (!is)
            return Status(StatusCode::kTruncated, "load_mlp: missing checksum");
        const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
        if (actual_crc != stored_crc)
            return Status(StatusCode::kCorruptData,
                          "load_mlp: checkpoint corrupted (crc mismatch)");

        std::istringstream ps(payload, std::ios::binary);
        const auto layer_count = read_pod<std::uint64_t>(ps);
        if (layer_count > 1024)
            throw std::runtime_error("load_mlp: implausible layer count");
        return read_layers(ps, layer_count);
    } catch (const std::runtime_error& e) {
        return Status(StatusCode::kCorruptData, e.what());
    }
}

[[nodiscard]] Result<Mlp> try_load_mlp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status(StatusCode::kNotFound, "load_mlp: cannot open " + path);
    return try_load_mlp(is);
}

Mlp load_mlp(std::istream& is) {
    return try_load_mlp(is).value();
}

Mlp load_mlp(const std::string& path) {
    return try_load_mlp(path).value();
}

void save_quantized_mlp(const QuantizedMlp& net, std::ostream& os) {
    std::ostringstream payload_os(std::ios::binary);
    write_pod(payload_os, kModelKindQuantizedInt8);
    write_pod(payload_os, static_cast<std::uint64_t>(net.layers().size()));
    for (const QuantizedDenseLayer& layer : net.layers()) {
        write_pod(payload_os, static_cast<std::uint64_t>(layer.in));
        write_pod(payload_os, static_cast<std::uint64_t>(layer.out));
        write_pod(payload_os, static_cast<std::uint8_t>(layer.act));
        write_pod(payload_os, layer.in_scale);
        write_pod(payload_os, layer.w_scale);
        payload_os.write(reinterpret_cast<const char*>(layer.weights.data()),
                         static_cast<std::streamsize>(layer.weights.size()));
        payload_os.write(
            reinterpret_cast<const char*>(layer.bias.data()),
            static_cast<std::streamsize>(layer.bias.size() * sizeof(float)));
    }
    const std::string payload = payload_os.str();

    os.write(kMagic, sizeof(kMagic));
    write_pod(os, kQuantVersion);
    write_pod(os, static_cast<std::uint64_t>(payload.size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    write_pod(os, crc32(payload.data(), payload.size()));
    if (!os) throw std::runtime_error("save_quantized_mlp: write failure");
}

void save_quantized_mlp(const QuantizedMlp& net, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("save_quantized_mlp: cannot open " + path);
    save_quantized_mlp(net, os);
}

[[nodiscard]] Result<QuantizedMlp> try_load_quantized_mlp(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is)
        return Status(StatusCode::kTruncated,
                      "load_quantized_mlp: truncated header");
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return Status(StatusCode::kFormatMismatch,
                      "load_quantized_mlp: bad magic");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!is)
        return Status(StatusCode::kTruncated,
                      "load_quantized_mlp: truncated header");
    if (version == 1 || version == kVersion)
        return Status(StatusCode::kFormatMismatch,
                      "load_quantized_mlp: float (v" + std::to_string(version) +
                          ") checkpoint — use load_mlp");
    if (version != kQuantVersion)
        return Status(StatusCode::kFormatMismatch,
                      "load_quantized_mlp: unsupported version " +
                          std::to_string(version));

    std::uint64_t payload_bytes = 0;
    is.read(reinterpret_cast<char*>(&payload_bytes), sizeof(payload_bytes));
    if (!is)
        return Status(StatusCode::kTruncated,
                      "load_quantized_mlp: truncated header");
    if (payload_bytes < sizeof(std::uint8_t) + sizeof(std::uint64_t) ||
        payload_bytes > kMaxPayloadBytes)
        return Status(StatusCode::kCorruptData,
                      "load_quantized_mlp: implausible payload size " +
                          std::to_string(payload_bytes));

    std::string payload(payload_bytes, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
    if (!is)
        return Status(StatusCode::kTruncated,
                      "load_quantized_mlp: truncated payload (declared " +
                          std::to_string(payload_bytes) + " bytes, got " +
                          std::to_string(is.gcount()) + ")");
    std::uint32_t stored_crc = 0;
    is.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc));
    if (!is)
        return Status(StatusCode::kTruncated,
                      "load_quantized_mlp: missing checksum");
    if (crc32(payload.data(), payload.size()) != stored_crc)
        return Status(StatusCode::kCorruptData,
                      "load_quantized_mlp: checkpoint corrupted (crc mismatch)");

    try {
        std::istringstream ps(payload, std::ios::binary);
        const auto model_kind = read_pod<std::uint8_t>(ps);
        if (model_kind != kModelKindQuantizedInt8)
            throw std::runtime_error("load_quantized_mlp: unknown model kind " +
                                     std::to_string(model_kind));
        const auto layer_count = read_pod<std::uint64_t>(ps);
        if (layer_count == 0 || layer_count > 1024)
            throw std::runtime_error(
                "load_quantized_mlp: implausible layer count");
        std::vector<QuantizedDenseLayer> layers;
        layers.reserve(layer_count);
        for (std::uint64_t i = 0; i < layer_count; ++i) {
            QuantizedDenseLayer layer;
            layer.in = static_cast<std::size_t>(read_pod<std::uint64_t>(ps));
            layer.out = static_cast<std::size_t>(read_pod<std::uint64_t>(ps));
            if (layer.in == 0 || layer.out == 0 || layer.in > (1u << 20) ||
                layer.out > (1u << 20))
                throw std::runtime_error(
                    "load_quantized_mlp: implausible layer shape");
            const auto act = read_pod<std::uint8_t>(ps);
            if (act > static_cast<std::uint8_t>(kernels::Activation::kSigmoid))
                throw std::runtime_error(
                    "load_quantized_mlp: unknown activation");
            layer.act = static_cast<kernels::Activation>(act);
            layer.in_scale = read_pod<float>(ps);
            layer.w_scale = read_pod<float>(ps);
            layer.weights.resize(layer.in * layer.out);
            ps.read(reinterpret_cast<char*>(layer.weights.data()),
                    static_cast<std::streamsize>(layer.weights.size()));
            layer.bias.resize(layer.out);
            ps.read(reinterpret_cast<char*>(layer.bias.data()),
                    static_cast<std::streamsize>(layer.bias.size() *
                                                 sizeof(float)));
            if (!ps)
                throw std::runtime_error(
                    "load_quantized_mlp: truncated weights");
            layers.push_back(std::move(layer));
        }
        return QuantizedMlp::from_layers(std::move(layers));
    } catch (const std::exception& e) {
        return Status(StatusCode::kCorruptData, e.what());
    }
}

[[nodiscard]] Result<QuantizedMlp> try_load_quantized_mlp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return Status(StatusCode::kNotFound,
                      "load_quantized_mlp: cannot open " + path);
    return try_load_quantized_mlp(is);
}

QuantizedMlp load_quantized_mlp(std::istream& is) {
    return try_load_quantized_mlp(is).value();
}

QuantizedMlp load_quantized_mlp(const std::string& path) {
    return try_load_quantized_mlp(path).value();
}

}  // namespace wifisense::nn
