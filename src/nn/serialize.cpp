#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace wifisense::nn {

namespace {

constexpr char kMagic[4] = {'W', 'S', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

enum class LayerKind : std::uint8_t { kDense = 0, kReLU = 1, kSigmoid = 2, kDropout = 3 };

template <class T>
void write_pod(std::ostream& os, const T& value) {
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!is) throw std::runtime_error("load_mlp: truncated stream");
    return value;
}

}  // namespace

void save_mlp(const Mlp& net, std::ostream& os) {
    os.write(kMagic, sizeof(kMagic));
    write_pod(os, kVersion);
    write_pod(os, static_cast<std::uint64_t>(net.layers().size()));
    for (const auto& layer : net.layers()) {
        const auto in = static_cast<std::uint64_t>(layer->input_size());
        const auto out = static_cast<std::uint64_t>(layer->output_size());
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kDense));
            write_pod(os, in);
            write_pod(os, out);
            const auto w = dense->weights().data();
            os.write(reinterpret_cast<const char*>(w.data()),
                     static_cast<std::streamsize>(w.size() * sizeof(float)));
            os.write(reinterpret_cast<const char*>(dense->bias().data()),
                     static_cast<std::streamsize>(dense->bias().size() * sizeof(float)));
        } else if (dynamic_cast<const ReLU*>(layer.get()) != nullptr) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kReLU));
            write_pod(os, in);
            write_pod(os, out);
        } else if (dynamic_cast<const Sigmoid*>(layer.get()) != nullptr) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kSigmoid));
            write_pod(os, in);
            write_pod(os, out);
        } else if (const auto* drop = dynamic_cast<const Dropout*>(layer.get())) {
            write_pod(os, static_cast<std::uint8_t>(LayerKind::kDropout));
            write_pod(os, in);
            write_pod(os, out);
            write_pod(os, drop->rate());
        } else {
            throw std::runtime_error("save_mlp: unknown layer type");
        }
    }
    if (!os) throw std::runtime_error("save_mlp: write failure");
}

void save_mlp(const Mlp& net, const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("save_mlp: cannot open " + path);
    save_mlp(net, os);
}

Mlp load_mlp(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("load_mlp: bad magic");
    const auto version = read_pod<std::uint32_t>(is);
    if (version != kVersion) throw std::runtime_error("load_mlp: unsupported version");
    const auto layer_count = read_pod<std::uint64_t>(is);
    if (layer_count > 1024) throw std::runtime_error("load_mlp: implausible layer count");

    Mlp net;
    for (std::uint64_t i = 0; i < layer_count; ++i) {
        const auto kind = static_cast<LayerKind>(read_pod<std::uint8_t>(is));
        const auto in = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
        const auto out = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
        if (in == 0 || out == 0 || in > (1u << 20) || out > (1u << 20))
            throw std::runtime_error("load_mlp: implausible layer shape");
        switch (kind) {
            case LayerKind::kDense: {
                auto dense = std::make_unique<Dense>(in, out);
                auto w = dense->weights().data();
                is.read(reinterpret_cast<char*>(w.data()),
                        static_cast<std::streamsize>(w.size() * sizeof(float)));
                is.read(reinterpret_cast<char*>(dense->bias().data()),
                        static_cast<std::streamsize>(dense->bias().size() * sizeof(float)));
                if (!is) throw std::runtime_error("load_mlp: truncated weights");
                net.layers().push_back(std::move(dense));
                break;
            }
            case LayerKind::kReLU:
                net.layers().push_back(std::make_unique<ReLU>(in));
                break;
            case LayerKind::kSigmoid:
                net.layers().push_back(std::make_unique<Sigmoid>(in));
                break;
            case LayerKind::kDropout: {
                const auto rate = read_pod<double>(is);
                auto drop = std::make_unique<Dropout>(in, rate);
                drop->set_training(false);  // models load in inference mode
                net.layers().push_back(std::move(drop));
                break;
            }
            default:
                throw std::runtime_error("load_mlp: unknown layer kind");
        }
    }
    return net;
}

Mlp load_mlp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("load_mlp: cannot open " + path);
    return load_mlp(is);
}

}  // namespace wifisense::nn
