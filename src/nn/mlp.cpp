#include "nn/mlp.hpp"

#include <algorithm>
#include <stdexcept>

namespace wifisense::nn {

Mlp::Mlp(std::vector<std::size_t> dims, Init scheme, std::mt19937_64& rng)
    : dims_(std::move(dims)) {
    if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
    for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
        auto dense = std::make_unique<Dense>(dims_[i], dims_[i + 1]);
        initialize(*dense, scheme, rng);
        layers_.push_back(std::move(dense));
        const bool last = i + 2 == dims_.size();
        if (!last) layers_.push_back(std::make_unique<ReLU>(dims_[i + 1]));
    }
}

void Mlp::reserve_workspace(std::size_t max_rows) {
    if (layers_.empty())
        throw std::logic_error("Mlp::reserve_workspace: empty network");
    if (ws_act_.size() != layers_.size()) ws_act_.resize(layers_.size());
    if (max_rows <= ws_rows_) return;
    ws_rows_ = max_rows;
    ws_input_.reserve(max_rows, input_size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        ws_act_[i].reserve(max_rows, layers_[i]->output_size());
        layers_[i]->reserve_batch(max_rows);
    }
    if (ws_grad_rows_ > 0) {
        ws_grad_rows_ = 0;  // force re-reserve at the new row capacity
        reserve_grad_buffers();
    }
}

void Mlp::reserve_grad_buffers() {
    if (ws_grad_.size() != layers_.size()) ws_grad_.resize(layers_.size());
    if (ws_grad_rows_ >= ws_rows_) return;
    ws_grad_rows_ = ws_rows_;
    for (std::size_t i = 0; i < layers_.size(); ++i)
        ws_grad_[i].reserve(ws_grad_rows_, layers_[i]->output_size());
    ws_input_grad_.reserve(ws_grad_rows_, input_size());
}

// wifisense-lint: requires(noalloc, noexcept)
// wifisense-lint: allow-call(reserve_workspace) cold-path growth: runs only when a batch exceeds every earlier batch's rows; a warm steady-state call never enters it
const Matrix& Mlp::forward_ws(const Matrix& input, bool cache) {
    if (layers_.empty())
        // wifisense-lint: allow(ipa.throw-leak) precondition guard: fires
        // only on an unconstructed network, never on data content
        throw std::logic_error("Mlp::forward: empty network");
    if (input.rows() > ws_rows_ || ws_act_.size() != layers_.size())
        reserve_workspace(std::max(input.rows(), ws_rows_));
    const Matrix* cur = &input;
    if (!cache && !training_) {
        // Fused inference fast path: Dense + following ReLU/Sigmoid run as
        // one kernel (GEMM rows + bias/activation epilogue while the rows
        // are cache-hot), Dropout is skipped outright (identity at
        // inference). Bitwise identical to the layer-by-layer walk on the
        // scalar backend: same per-element arithmetic in the same order,
        // minus the activation layer's full-batch copy. Skipped layers get
        // their caches cleared exactly as an uncached forward_into() would.
        for (std::size_t i = 0; i < layers_.size(); ++i) {
            Layer& layer = *layers_[i];
            if (layer.kind() == LayerKind::kDense) {
                auto& dense = static_cast<Dense&>(layer);
                const LayerKind next = i + 1 < layers_.size()
                                           ? layers_[i + 1]->kind()
                                           : LayerKind::kOther;
                kernels::Activation act = kernels::Activation::kNone;
                if (next == LayerKind::kReLU) act = kernels::Activation::kReLU;
                if (next == LayerKind::kSigmoid) act = kernels::Activation::kSigmoid;
                std::size_t slot = i;
                if (act != kernels::Activation::kNone) {
                    layers_[i + 1]->clear_forward_cache();
                    slot = ++i;  // write straight into the activation's slot
                }
                layer.clear_forward_cache();
                dense_forward_into(*cur, dense.weights(), dense.bias(), act,
                                   ws_act_[slot]);
                cur = &ws_act_[slot];
            } else if (layer.kind() == LayerKind::kDropout) {
                layer.clear_forward_cache();  // identity: no copy, no cache
            } else {
                layer.forward_into(*cur, ws_act_[i], /*cache=*/false);
                cur = &ws_act_[i];
            }
        }
        fwd_input_ = nullptr;
        return *cur;
    }
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->forward_into(*cur, ws_act_[i], cache);
        cur = &ws_act_[i];
    }
    fwd_input_ = cache ? &input : nullptr;
    return *cur;
}

// wifisense-lint: allow-call(reserve_grad_buffers) cold-path growth: runs only when the workspace row capacity grew since the last backward pass; a warm steady-state call never enters it
Matrix& Mlp::output_grad_buffer() {
    if (layers_.empty())
        throw std::logic_error("Mlp::output_grad_buffer: empty network");
    if (ws_act_.size() != layers_.size())
        throw std::logic_error("Mlp::output_grad_buffer: no forward pass yet");
    reserve_grad_buffers();
    const Matrix& out = ws_act_.back();
    // wifisense-lint: allow(noalloc.container-growth) resize within the
    // reserved gradient-buffer capacity is allocation-free (DESIGN.md §11)
    ws_grad_.back().resize(out.rows(), out.cols());
    return ws_grad_.back();
}

const Matrix& Mlp::backward_ws() {
    if (layers_.empty()) throw std::logic_error("Mlp::backward: empty network");
    if (fwd_input_ == nullptr)
        throw std::logic_error(
            "Mlp::backward: no cached forward pass (the last forward ran in "
            "inference mode)");
    if (ws_grad_.size() != layers_.size())
        throw std::logic_error("Mlp::backward: output_grad_buffer() never filled");
    const Matrix& out = ws_act_.back();
    if (ws_grad_.back().rows() != out.rows() || ws_grad_.back().cols() != out.cols())
        throw std::invalid_argument("Mlp::backward: gradient shape mismatch");
    for (std::size_t i = layers_.size(); i-- > 0;) {
        Matrix& grad_in = i > 0 ? ws_grad_[i - 1] : ws_input_grad_;
        layers_[i]->backward_into(ws_grad_[i], grad_in);
    }
    return ws_input_grad_;
}

Matrix Mlp::forward(const Matrix& input) {
    if (layers_.empty()) throw std::logic_error("Mlp::forward: empty network");
    // Stage through the workspace slot so the cached views outlive the
    // caller's matrix (Grad-CAM and backward() read them after we return).
    ws_input_.copy_from(input);
    return forward_ws(ws_input_, /*cache=*/training_);
}

Matrix Mlp::backward(const Matrix& grad_output) {
    if (layers_.empty()) throw std::logic_error("Mlp::backward: empty network");
    if (ws_act_.size() != layers_.size())
        throw std::logic_error("Mlp::backward: no forward pass yet");
    output_grad_buffer().copy_from(grad_output);
    return backward_ws();
}

void Mlp::zero_grad() {
    for (const auto& layer : layers_) layer->zero_grad();
}

void Mlp::set_training(bool training) {
    training_ = training;
    for (const auto& layer : layers_) layer->set_training(training);
}

std::vector<ParamView> Mlp::parameters() {
    std::vector<ParamView> out;
    for (const auto& layer : layers_)
        for (ParamView& p : layer->parameters()) out.push_back(p);
    return out;
}

std::size_t Mlp::parameter_count() const {
    std::size_t n = 0;
    for (const auto& layer : layers_)
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get()))
            n += dense->parameter_count();
    return n;
}

std::size_t Mlp::input_size() const {
    if (layers_.empty()) return 0;
    return layers_.front()->input_size();
}

std::size_t Mlp::output_size() const {
    if (layers_.empty()) return 0;
    return layers_.back()->output_size();
}

Mlp Mlp::clone() const {
    Mlp copy;
    copy.dims_ = dims_;
    for (const auto& layer : layers_) {
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
            auto d = std::make_unique<Dense>(dense->input_size(), dense->output_size());
            d->weights() = dense->weights();
            d->bias() = dense->bias();
            copy.layers_.push_back(std::move(d));
        } else if (dynamic_cast<const ReLU*>(layer.get()) != nullptr) {
            copy.layers_.push_back(std::make_unique<ReLU>(layer->input_size()));
        } else if (dynamic_cast<const Sigmoid*>(layer.get()) != nullptr) {
            copy.layers_.push_back(std::make_unique<Sigmoid>(layer->input_size()));
        } else if (const auto* drop = dynamic_cast<const Dropout*>(layer.get())) {
            copy.layers_.push_back(
                std::make_unique<Dropout>(drop->input_size(), drop->rate()));
        } else {
            throw std::logic_error("Mlp::clone: unknown layer type");
        }
    }
    return copy;
}

Mlp paper_mlp(std::size_t input_size, std::mt19937_64& rng) {
    return Mlp({input_size, 128, 256, 128, 1}, Init::kKaimingUniform, rng);
}

Mlp paper_regression_mlp(std::size_t input_size, std::size_t outputs,
                         std::mt19937_64& rng) {
    return Mlp({input_size, 128, 256, 128, outputs}, Init::kKaimingUniform, rng);
}

}  // namespace wifisense::nn
