#include "nn/mlp.hpp"

#include <stdexcept>

namespace wifisense::nn {

Mlp::Mlp(std::vector<std::size_t> dims, Init scheme, std::mt19937_64& rng)
    : dims_(std::move(dims)) {
    if (dims_.size() < 2) throw std::invalid_argument("Mlp: need at least in/out dims");
    for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
        auto dense = std::make_unique<Dense>(dims_[i], dims_[i + 1]);
        initialize(*dense, scheme, rng);
        layers_.push_back(std::move(dense));
        const bool last = i + 2 == dims_.size();
        if (!last) layers_.push_back(std::make_unique<ReLU>(dims_[i + 1]));
    }
}

Matrix Mlp::forward(const Matrix& input) {
    if (layers_.empty()) throw std::logic_error("Mlp::forward: empty network");
    Matrix x = input;
    for (const auto& layer : layers_) x = layer->forward(x);
    return x;
}

Matrix Mlp::backward(const Matrix& grad_output) {
    if (layers_.empty()) throw std::logic_error("Mlp::backward: empty network");
    Matrix g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
}

void Mlp::zero_grad() {
    for (const auto& layer : layers_) layer->zero_grad();
}

void Mlp::set_training(bool training) {
    for (const auto& layer : layers_) layer->set_training(training);
}

std::vector<ParamView> Mlp::parameters() {
    std::vector<ParamView> out;
    for (const auto& layer : layers_)
        for (ParamView& p : layer->parameters()) out.push_back(p);
    return out;
}

std::size_t Mlp::parameter_count() const {
    std::size_t n = 0;
    for (const auto& layer : layers_)
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get()))
            n += dense->parameter_count();
    return n;
}

std::size_t Mlp::input_size() const {
    if (layers_.empty()) return 0;
    return layers_.front()->input_size();
}

std::size_t Mlp::output_size() const {
    if (layers_.empty()) return 0;
    return layers_.back()->output_size();
}

Mlp Mlp::clone() const {
    Mlp copy;
    copy.dims_ = dims_;
    for (const auto& layer : layers_) {
        if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
            auto d = std::make_unique<Dense>(dense->input_size(), dense->output_size());
            d->weights() = dense->weights();
            d->bias() = dense->bias();
            copy.layers_.push_back(std::move(d));
        } else if (dynamic_cast<const ReLU*>(layer.get()) != nullptr) {
            copy.layers_.push_back(std::make_unique<ReLU>(layer->input_size()));
        } else if (dynamic_cast<const Sigmoid*>(layer.get()) != nullptr) {
            copy.layers_.push_back(std::make_unique<Sigmoid>(layer->input_size()));
        } else if (const auto* drop = dynamic_cast<const Dropout*>(layer.get())) {
            copy.layers_.push_back(
                std::make_unique<Dropout>(drop->input_size(), drop->rate()));
        } else {
            throw std::logic_error("Mlp::clone: unknown layer type");
        }
    }
    return copy;
}

Mlp paper_mlp(std::size_t input_size, std::mt19937_64& rng) {
    return Mlp({input_size, 128, 256, 128, 1}, Init::kKaimingUniform, rng);
}

Mlp paper_regression_mlp(std::size_t input_size, std::size_t outputs,
                         std::mt19937_64& rng) {
    return Mlp({input_size, 128, 256, 128, outputs}, Init::kKaimingUniform, rng);
}

}  // namespace wifisense::nn
