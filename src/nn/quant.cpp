#include "nn/quant.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/parallel.hpp"
#include "nn/kernels/backend.hpp"

namespace wifisense::nn {

namespace {

/// Log-domain histogram of |v|: the bin index is the exponent plus the top
/// four mantissa bits of the float (bits >> 19), so edges are fixed
/// ~6%-spaced magnitudes, counts are exact integers, and the percentile
/// scan needs no second data pass and no knowledge of the range. Used to
/// clip the activation calibration: absmax scales are hostage to a single
/// outlier (one 8-sigma value halves the resolution of every other
/// activation), while a high-percentile clip saturates the handful of
/// outliers — the quantizer clamps to +-127 anyway — and keeps the mass of
/// values fine-grained.
struct AbsHistogram {
    std::array<std::uint32_t, 4096> bins{};
    std::uint64_t zeros = 0;
    std::uint64_t total = 0;
    float absmax = 0.0f;

    void add(float v) {
        const float a = std::abs(v);
        ++total;
        if (a == 0.0f) {
            ++zeros;
            return;
        }
        absmax = std::max(absmax, a);
        std::uint32_t bits;
        std::memcpy(&bits, &a, sizeof(bits));
        ++bins[bits >> 19];
    }

    /// Smallest fixed bin edge covering at least `coverage` of the values
    /// (zeros sit below every edge); absmax when nothing can be clipped.
    float clip(double coverage) const {
        if (total == 0) return 0.0f;
        const auto target = static_cast<std::uint64_t>(
            std::ceil(coverage * static_cast<double>(total)));
        std::uint64_t seen = zeros;
        for (std::size_t b = 0; b < bins.size(); ++b) {
            seen += bins[b];
            if (seen >= target) {
                const auto edge_bits = static_cast<std::uint32_t>((b + 1) << 19);
                float edge;
                std::memcpy(&edge, &edge_bits, sizeof(edge));
                return std::min(edge, absmax);
            }
        }
        return absmax;
    }
};

/// Fraction of calibration activations kept inside the quantization range;
/// the rest saturate. See AbsHistogram.
constexpr double kCalibCoverage = 0.9995;

/// Row-block size for the int8 layer kernel; same ~64k-mul-adds-per-task
/// shape-only rule as the float GEMM dispatch in tensor.cpp.
std::size_t quant_row_grain(std::size_t flops_per_row) {
    constexpr std::size_t kTargetFlopsPerTask = 64 * 1024;
    if (flops_per_row == 0) return 1;
    return std::max<std::size_t>(1, kTargetFlopsPerTask / flops_per_row);
}

/// absmax/127 with a safe floor: an all-zero tensor quantizes with scale 1
/// (every value maps to 0 either way).
float symmetric_scale(float absmax) {
    return absmax > 0.0f ? absmax / 127.0f : 1.0f;
}

// wifisense-lint: noalloc-begin

/// One quantized layer over rows [0, rows): quantize the float input,
/// int8-GEMM against the transposed weights, dequantize+bias+activation
/// into `out`. All three stages run per row chunk while the rows are
/// cache-hot. Buffers are caller-owned; nothing here allocates.
// wifisense-lint: allow-call(quantize_s8_rows, gemm_s8_rows, dequant_bias_act_rows) KernelBackend function-pointer dispatch: every registered backend's row kernel is itself a requires(noalloc, noexcept, noclock, det) root proven by this linter
void quantized_layer_forward_into(const QuantizedDenseLayer& layer,
                                  const float* in, std::size_t rows,
                                  std::int8_t* q, std::int32_t* acc,
                                  float* out) {
    const std::size_t k = layer.in, n = layer.out;
    const kernels::KernelBackend& kb = kernels::active_backend();
    const float inv_in_scale = 1.0f / layer.in_scale;
    const float dequant_scale = layer.in_scale * layer.w_scale;
    const std::int8_t* w = layer.weights.data();
    const float* bias = layer.bias.data();
    const kernels::Activation act = layer.act;
    common::parallel_for_chunks(
        rows, quant_row_grain(k * n), [&](std::size_t r0, std::size_t r1) {
            kb.quantize_s8_rows(in, q, inv_in_scale, k, r0, r1);
            kb.gemm_s8_rows(q, w, acc, k, n, r0, r1);
            kb.dequant_bias_act_rows(acc, dequant_scale, bias, out, n, act, r0,
                                     r1);
        });
}

// wifisense-lint: noalloc-end

}  // namespace

QuantizedMlp QuantizedMlp::from_layers(std::vector<QuantizedDenseLayer> layers) {
    if (layers.empty())
        throw std::invalid_argument("QuantizedMlp: need at least one layer");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const QuantizedDenseLayer& l = layers[i];
        if (l.in == 0 || l.out == 0)
            throw std::invalid_argument("QuantizedMlp: zero-sized layer");
        if (l.weights.size() != l.in * l.out)
            throw std::invalid_argument("QuantizedMlp: weight count mismatch");
        if (l.bias.size() != l.out)
            throw std::invalid_argument("QuantizedMlp: bias count mismatch");
        if (!(l.in_scale > 0.0f) || !(l.w_scale > 0.0f))
            throw std::invalid_argument("QuantizedMlp: non-positive scale");
        if (i > 0 && layers[i - 1].out != l.in)
            throw std::invalid_argument("QuantizedMlp: layer width mismatch");
    }
    QuantizedMlp net;
    net.layers_ = std::move(layers);
    return net;
}

std::size_t QuantizedMlp::parameter_count() const {
    std::size_t n = 0;
    for (const QuantizedDenseLayer& l : layers_)
        n += l.weights.size() + l.bias.size();
    return n;
}

std::size_t QuantizedMlp::weight_bytes() const {
    std::size_t bytes = 0;
    for (const QuantizedDenseLayer& l : layers_)
        bytes += l.weights.size() * sizeof(std::int8_t) +
                 l.bias.size() * sizeof(float);
    return bytes;
}

void QuantizedMlp::reserve_workspace(std::size_t max_rows) {
    if (layers_.empty())
        throw std::logic_error("QuantizedMlp::reserve_workspace: empty network");
    if (max_rows <= ws_rows_) return;
    ws_rows_ = max_rows;
    std::size_t max_in = 0, max_out = 0;
    for (const QuantizedDenseLayer& l : layers_) {
        max_in = std::max(max_in, l.in);
        max_out = std::max(max_out, l.out);
    }
    ws_input_.reserve(max_rows, input_size());
    ws_a_.reserve(max_rows, max_out);
    ws_b_.reserve(max_rows, max_out);
    // Sized once to the reserved capacity; the hot path indexes by row count
    // and never resizes them.
    ws_q_.resize(max_rows * max_in);
    ws_acc_.resize(max_rows * max_out);
}

// wifisense-lint: requires(noalloc, noexcept)
// wifisense-lint: allow-call(reserve_workspace) cold-path growth: runs only when a batch exceeds every earlier batch's rows; a warm steady-state call never enters it
// wifisense-lint: allow-call(shape_string) error-text construction reached only on the precondition-failure path, which ends in an allowed throw
const Matrix& QuantizedMlp::forward_ws(const Matrix& input) {
    if (layers_.empty())
        // wifisense-lint: allow(ipa.throw-leak) precondition guard: fires
        // only on an unconstructed network, never on data content
        throw std::logic_error("QuantizedMlp::forward: empty network");
    if (input.cols() != input_size())
        // wifisense-lint: allow(ipa.throw-leak) shape precondition guard:
        // fires only on caller API misuse, never on data content
        throw std::invalid_argument("QuantizedMlp::forward: input width " +
                                    input.shape_string() + " != network input");
    if (input.rows() > ws_rows_) reserve_workspace(input.rows());
    const std::size_t rows = input.rows();
    const Matrix* cur = &input;
    Matrix* next = &ws_a_;
    for (const QuantizedDenseLayer& layer : layers_) {
        // wifisense-lint: allow(noalloc.container-growth) resize within the
        // reserved workspace capacity is allocation-free (DESIGN.md §11)
        next->resize(rows, layer.out);
        quantized_layer_forward_into(layer, cur->data().data(), rows,
                                     ws_q_.data(), ws_acc_.data(),
                                     next->data().data());
        cur = next;
        next = next == &ws_a_ ? &ws_b_ : &ws_a_;
    }
    return *cur;
}

QuantizedMlp quantize_mlp(const Mlp& net, const Matrix& calibration) {
    if (net.layers().empty())
        throw std::invalid_argument("quantize_mlp: empty network");
    if (calibration.rows() == 0 || calibration.cols() != net.input_size())
        throw std::invalid_argument(
            "quantize_mlp: calibration batch must be [n >= 1 x input_size]");

    // Sweep the calibration batch through a clone of the float network with
    // activation caching on (inference mode, so Dropout is the identity) and
    // histogram the magnitudes seen at every Dense layer's input — the
    // percentile-clipped maximum over that sweep, divided by 127, is the
    // layer's activation scale.
    Mlp probe = net.clone();
    probe.set_training(false);
    const std::vector<std::unique_ptr<Layer>>& layers = probe.layers();
    std::vector<AbsHistogram> dense_hist(layers.size());
    constexpr std::size_t kCalibBatch = 4096;
    probe.reserve_workspace(std::min<std::size_t>(kCalibBatch, calibration.rows()));
    for (std::size_t begin = 0; begin < calibration.rows(); begin += kCalibBatch) {
        const std::size_t count =
            std::min(kCalibBatch, calibration.rows() - begin);
        Matrix& block = probe.input_buffer();
        row_block_into(calibration, begin, count, block);
        probe.forward_ws(block, /*cache=*/true);
        for (std::size_t i = 0; i < layers.size(); ++i) {
            if (layers[i]->kind() != LayerKind::kDense) continue;
            const Matrix& in_act = i == 0 ? block : layers[i - 1]->last_output();
            for (const float v : in_act.data()) dense_hist[i].add(v);
        }
    }

    std::vector<QuantizedDenseLayer> qlayers;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Layer& layer = *layers[i];
        switch (layer.kind()) {
            case LayerKind::kDense: {
                const auto& dense = static_cast<const Dense&>(layer);
                QuantizedDenseLayer q;
                q.in = dense.input_size();
                q.out = dense.output_size();
                q.in_scale = symmetric_scale(dense_hist[i].clip(kCalibCoverage));
                float wmax = 0.0f;
                for (const float v : dense.weights().data())
                    wmax = std::max(wmax, std::abs(v));
                q.w_scale = symmetric_scale(wmax);
                // Transpose [in x out] -> [out x in] while quantizing.
                q.weights.resize(q.in * q.out);
                const float inv_w_scale = 1.0f / q.w_scale;
                for (std::size_t r = 0; r < q.in; ++r)
                    for (std::size_t c = 0; c < q.out; ++c) {
                        const float rounded = std::nearbyintf(
                            dense.weights().at(r, c) * inv_w_scale);
                        q.weights[c * q.in + r] = static_cast<std::int8_t>(
                            std::min(127.0f, std::max(-127.0f, rounded)));
                    }
                q.bias = dense.bias();
                // Fuse an immediately following activation layer.
                if (i + 1 < layers.size()) {
                    const LayerKind next = layers[i + 1]->kind();
                    if (next == LayerKind::kReLU) {
                        q.act = kernels::Activation::kReLU;
                        ++i;
                    } else if (next == LayerKind::kSigmoid) {
                        q.act = kernels::Activation::kSigmoid;
                        ++i;
                    }
                }
                qlayers.push_back(std::move(q));
                break;
            }
            case LayerKind::kDropout:
                break;  // identity at inference
            case LayerKind::kReLU:
            case LayerKind::kSigmoid:
                throw std::invalid_argument(
                    "quantize_mlp: activation layer not preceded by Dense");
            case LayerKind::kOther:
                throw std::invalid_argument(
                    "quantize_mlp: unsupported layer type " + layer.name());
        }
    }
    return QuantizedMlp::from_layers(std::move(qlayers));
}

Matrix predict(QuantizedMlp& net, const Matrix& inputs, std::size_t batch_size) {
    if (batch_size == 0) throw std::invalid_argument("predict: zero batch size");
    if (inputs.rows() > 0)
        net.reserve_workspace(std::min(batch_size, inputs.rows()));
    Matrix out(inputs.rows(), net.output_size());
    for (std::size_t begin = 0; begin < inputs.rows(); begin += batch_size) {
        const std::size_t count = std::min(batch_size, inputs.rows() - begin);
        Matrix& block = net.input_buffer();
        row_block_into(inputs, begin, count, block);
        const Matrix& y = net.forward_ws(block);
        std::copy_n(y.data().data(), y.size(),
                    out.data().data() + begin * out.cols());
    }
    return out;
}

std::vector<int> predict_binary(QuantizedMlp& net, const Matrix& inputs,
                                std::size_t batch_size) {
    if (net.output_size() != 1)
        throw std::invalid_argument("predict_binary: network must have one output");
    const Matrix logits = predict(net, inputs, batch_size);
    std::vector<int> labels(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r)
        labels[r] = logits.at(r, 0) > 0.0f ? 1 : 0;  // sigmoid(z) > .5 <=> z > 0
    return labels;
}

}  // namespace wifisense::nn
