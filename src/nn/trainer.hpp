// Mini-batch training loop: shuffled batches, AdamW updates, optional
// gradient clipping, per-epoch loss history (paper: 10 epochs, lr 5e-3,
// batch gradient descent with weight decay).
#pragma once

#include <cstddef>
#include <functional>
#include <random>
#include <vector>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace wifisense::nn {

/// Per-epoch learning-rate schedules.
enum class LrSchedule {
    kConstant,   ///< paper's setting
    kStepDecay,  ///< lr *= step_gamma every step_every epochs
    kCosine,     ///< cosine annealing from lr to lr * cosine_floor
};

struct TrainConfig {
    std::size_t epochs = 10;         ///< paper's epoch count
    std::size_t batch_size = 256;
    double learning_rate = 5e-3;     ///< paper's learning rate
    double weight_decay = 1e-2;
    LrSchedule schedule = LrSchedule::kConstant;
    double step_gamma = 0.5;
    std::size_t step_every = 3;
    double cosine_floor = 0.01;
    double grad_clip = 0.0;          ///< 0 disables; otherwise clip global L2 norm
    /// Gaussian noise added to each training batch's inputs (std-dev, in
    /// feature units; 0 disables). With standardized features ~0.1-0.3 acts
    /// as a density surrogate: the paper trains on the full 20 Hz stream
    /// (5.4M rows) whose natural jitter covers far more channel states than
    /// a strided CPU-sized subsample does.
    double input_noise = 0.0;
    bool shuffle = true;
    std::uint64_t seed = 42;
    /// Optional per-epoch callback (epoch index, mean train loss).
    std::function<void(std::size_t, double)> on_epoch;
};

struct TrainHistory {
    std::vector<double> epoch_loss;  ///< mean train loss per epoch
    double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
};

/// Train `net` on (inputs, targets) with the given loss.
/// inputs: [n x in], targets: [n x out]; rows are aligned samples.
TrainHistory train(Mlp& net, const Matrix& inputs, const Matrix& targets,
                   const Loss& loss, const TrainConfig& cfg);

/// Same loop with a caller-supplied optimizer (ablation benches swap in SGD).
TrainHistory train(Mlp& net, const Matrix& inputs, const Matrix& targets,
                   const Loss& loss, const TrainConfig& cfg, Optimizer& opt);

/// Forward the whole input in evaluation batches (keeps the activation
/// footprint bounded for large test folds). Runs in inference mode — dropout
/// is the identity and activation caches are not populated — restoring the
/// network's previous training/inference mode before returning. Warm batches
/// reuse the network workspace and allocate nothing.
Matrix predict(Mlp& net, const Matrix& inputs, std::size_t batch_size = 4096);

/// Binary prediction convenience: sigmoid(logit) > 0.5 per row.
std::vector<int> predict_binary(Mlp& net, const Matrix& inputs,
                                std::size_t batch_size = 4096);

}  // namespace wifisense::nn
