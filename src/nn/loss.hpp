// Loss functions. Both return the mean loss over the batch and fill the
// gradient with d(meanLoss)/d(output) so Trainer can feed it straight into
// Mlp::backward.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace wifisense::nn {

struct LossResult {
    double value = 0.0;  ///< mean loss over the batch
    Matrix grad;         ///< d(value)/d(outputs), same shape as outputs
};

class Loss {
public:
    virtual ~Loss() = default;
    /// outputs and targets must be equally shaped (targets for BCE are the
    /// {0,1} labels broadcast into a [n x 1] matrix).
    virtual LossResult compute(const Matrix& outputs, const Matrix& targets) const = 0;
};

/// Binary cross-entropy over logits (Eq. 4 with the sigmoid folded in).
/// Numerically stable log-sum-exp formulation:
///   loss = max(z,0) - z*y + log(1 + exp(-|z|)),  dloss/dz = sigmoid(z) - y.
class BceWithLogitsLoss final : public Loss {
public:
    LossResult compute(const Matrix& outputs, const Matrix& targets) const override;
};

/// Mean squared error over all elements ("minimization of a squared error
/// objective", Section V-D regression head).
class MseLoss final : public Loss {
public:
    LossResult compute(const Matrix& outputs, const Matrix& targets) const override;
};

/// Multi-class cross-entropy over logits with integer class targets encoded
/// one-hot in the target matrix. Used by the activity-recognition and
/// occupant-counting extensions (the paper's stated future work).
/// Numerically stable log-softmax formulation.
class SoftmaxCrossEntropyLoss final : public Loss {
public:
    LossResult compute(const Matrix& outputs, const Matrix& targets) const override;
};

/// Elementwise sigmoid of a logit matrix (utility for inference paths).
Matrix sigmoid(const Matrix& logits);

/// Row-wise softmax of a logit matrix.
Matrix softmax(const Matrix& logits);

/// Row-wise argmax (predicted class per sample).
std::vector<int> argmax_rows(const Matrix& scores);

/// One-hot encode integer labels into an [n x n_classes] matrix.
Matrix one_hot(const std::vector<int>& labels, std::size_t n_classes);

}  // namespace wifisense::nn
