// Loss functions. Each returns the mean loss over the batch and fills the
// gradient with d(meanLoss)/d(output) so Trainer can feed it straight into
// Mlp::backward.
//
// The core API is destination-passing (compute_into): the gradient is written
// into a caller-owned matrix — the trainer passes Mlp::output_grad_buffer(),
// so a steady-state training step allocates nothing here. The value-returning
// compute() remains as a convenience shim.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace wifisense::nn {

struct LossResult {
    double value = 0.0;  ///< mean loss over the batch
    Matrix grad;         ///< d(value)/d(outputs), same shape as outputs
};

class Loss {
public:
    virtual ~Loss() = default;

    /// Mean batch loss; writes d(meanLoss)/d(outputs) into `grad` (resized to
    /// the outputs' shape; allocation-free within reserved capacity).
    /// outputs and targets must be equally shaped (targets for BCE are the
    /// {0,1} labels broadcast into a [n x 1] matrix).
    virtual double compute_into(const Matrix& outputs, const Matrix& targets,
                                Matrix& grad) const = 0;

    /// Value-returning convenience shim over compute_into().
    LossResult compute(const Matrix& outputs, const Matrix& targets) const;
};

/// Binary cross-entropy over logits (Eq. 4 with the sigmoid folded in).
/// Numerically stable log-sum-exp formulation:
///   loss = max(z,0) - z*y + log(1 + exp(-|z|)),  dloss/dz = sigmoid(z) - y.
class BceWithLogitsLoss final : public Loss {
public:
    double compute_into(const Matrix& outputs, const Matrix& targets,
                        Matrix& grad) const override;
};

/// Mean squared error over all elements ("minimization of a squared error
/// objective", Section V-D regression head).
class MseLoss final : public Loss {
public:
    double compute_into(const Matrix& outputs, const Matrix& targets,
                        Matrix& grad) const override;
};

/// Multi-class cross-entropy over logits with integer class targets encoded
/// one-hot in the target matrix. Used by the activity-recognition and
/// occupant-counting extensions (the paper's stated future work).
/// Numerically stable log-softmax formulation.
class SoftmaxCrossEntropyLoss final : public Loss {
public:
    double compute_into(const Matrix& outputs, const Matrix& targets,
                        Matrix& grad) const override;
};

/// Elementwise sigmoid of a logit matrix (utility for inference paths).
Matrix sigmoid(const Matrix& logits);

/// Row-wise softmax of a logit matrix.
Matrix softmax(const Matrix& logits);

/// Row-wise argmax (predicted class per sample).
std::vector<int> argmax_rows(const Matrix& scores);

/// One-hot encode integer labels into an [n x n_classes] matrix.
Matrix one_hot(const std::vector<int>& labels, std::size_t n_classes);

}  // namespace wifisense::nn
