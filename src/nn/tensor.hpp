// Dense row-major float32 matrix plus the handful of BLAS-like kernels the
// network needs. Accumulation inside reductions/GEMM uses float; the matrices
// here are small (<= a few hundred columns) so float accumulation is safe —
// long-series statistics live in stats/ and use double.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "nn/kernels/backend.hpp"

namespace wifisense::nn {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> values);
    /// Row-major brace initialization: Matrix{{1,2},{3,4}}.
    Matrix(std::initializer_list<std::initializer_list<float>> rows);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    float& at(std::size_t r, std::size_t c) { return values_[r * cols_ + c]; }
    float at(std::size_t r, std::size_t c) const { return values_[r * cols_ + c]; }

    std::span<float> row(std::size_t r) { return {&values_[r * cols_], cols_}; }
    std::span<const float> row(std::size_t r) const { return {&values_[r * cols_], cols_}; }

    std::span<float> data() { return values_; }
    std::span<const float> data() const { return values_; }

    void fill(float v);
    std::string shape_string() const;  ///< "[rows x cols]"

    /// Pre-allocate backing storage for up to rows*cols elements without
    /// changing the shape. A later resize() within this capacity is
    /// allocation-free — the basis of the steady-state zero-allocation
    /// contract (DESIGN.md, "Memory model").
    void reserve(std::size_t rows, std::size_t cols) { values_.reserve(rows * cols); }

    /// Reshape in place. Existing elements are kept up to the new size (new
    /// elements, if any, are zero). Never shrinks capacity; never allocates
    /// when rows*cols fits the reserved capacity.
    void resize(std::size_t rows, std::size_t cols) {
        // wifisense-lint: allow(noalloc.container-growth) growth is charged
        // to each caller's resize() call site, which carries its own
        // capacity proof; below reserved capacity this never allocates
        values_.resize(rows * cols);
        rows_ = rows;
        cols_ = cols;
    }

    std::size_t capacity() const { return values_.capacity(); }

    /// Become an elementwise copy of `src` (resizes; allocation-free when
    /// src.size() fits the reserved capacity).
    void copy_from(const Matrix& src);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> values_;
};

// ---------------------------------------------------------------------------
// Destination-passing kernels. Each *_into overload resizes `out` (a reserve()
// within capacity makes that allocation-free) and produces every output
// element with the same per-element accumulation order as the allocating
// wrapper below it, so the two spellings are bitwise interchangeable. `out`
// must not alias any input.
// ---------------------------------------------------------------------------

// wifisense-lint: noalloc-begin

/// out = A * B. Shapes: [m x k] * [k x n] -> [m x n].
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out (+)= A^T * B. Shapes: [k x m]^T * [k x n] -> [m x n]. With
/// `accumulate` the product is added onto the existing contents (out must
/// already be [m x n]) — used for gradient accumulation without a scratch
/// matrix. Note the accumulate path folds the running total into the
/// ascending-k sum, which is bitwise identical to sum-then-add exactly when
/// the destination starts at zero (it does: the training loop zero_grads
/// before every backward pass).
void matmul_tn_into(const Matrix& a, const Matrix& b, Matrix& out,
                    bool accumulate = false);

/// out = A * B^T. Shapes: [m x k] * [n x k]^T -> [m x n].
void matmul_nt_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = act(A * W + bias): the fused dense-layer forward of the inference
/// fast path. Each parallel row chunk runs the GEMM rows and then the
/// bias+activation epilogue while those rows are cache-hot, eliminating the
/// separate bias pass and the activation layer's full-batch copy. On the
/// scalar backend the result is bitwise identical to the unfused
/// matmul_into + add_row_vector_inplace + ReLU/Sigmoid sequence (same
/// per-element operation order; float32 stores round-trip exactly).
void dense_forward_into(const Matrix& a, const Matrix& w,
                        std::span<const float> bias, kernels::Activation act,
                        Matrix& out);

// wifisense-lint: noalloc-end

/// C = A * B. Shapes: [m x k] * [k x n] -> [m x n].
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B. Shapes: [k x m]^T * [k x n] -> [m x n].
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: [m x k] * [n x k]^T -> [m x n].
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// out[r] = a[r] + v for each row r; v.size() must equal a.cols().
void add_row_vector_inplace(Matrix& a, std::span<const float> v);

/// Column sums of a (length a.cols()).
std::vector<float> column_sums(const Matrix& a);

/// out (+)= column sums of a; out.size() must equal a.cols(). With
/// `accumulate` the row contributions fold onto the existing contents (same
/// zero-start bitwise caveat as matmul_tn_into).
// wifisense-lint: noalloc-begin
void column_sums_into(const Matrix& a, std::span<float> out,
                      bool accumulate = false);
// wifisense-lint: noalloc-end

/// Column means of a.
std::vector<float> column_means(const Matrix& a);

/// Elementwise a + b, a - b, a * b (Hadamard). Shapes must match.
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Elementwise in-place variants: a op= b. Shapes must match.
void add_inplace(Matrix& a, const Matrix& b);
void sub_inplace(Matrix& a, const Matrix& b);
void hadamard_inplace(Matrix& a, const Matrix& b);

/// Elementwise scale in place.
void scale_inplace(Matrix& a, float s);

/// Transposed copy.
Matrix transpose(const Matrix& a);

/// Select a contiguous block of rows [begin, begin+count).
Matrix row_block(const Matrix& a, std::size_t begin, std::size_t count);

/// out = rows [begin, begin+count) of a (resizes out; see *_into contract).
// wifisense-lint: noalloc-begin
void row_block_into(const Matrix& a, std::size_t begin, std::size_t count,
                    Matrix& out);
// wifisense-lint: noalloc-end

/// Gather rows by index (out-of-range indices throw).
Matrix gather_rows(const Matrix& a, std::span<const std::size_t> indices);

/// out = a[indices] (resizes out; out-of-range indices throw).
// wifisense-lint: noalloc-begin
void gather_rows_into(const Matrix& a, std::span<const std::size_t> indices,
                      Matrix& out);
// wifisense-lint: noalloc-end

/// Max absolute difference between two equally-shaped matrices.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace wifisense::nn
