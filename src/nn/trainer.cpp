#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace wifisense::nn {

namespace {

double scheduled_lr(const TrainConfig& cfg, std::size_t epoch) {
    switch (cfg.schedule) {
        case LrSchedule::kConstant:
            return cfg.learning_rate;
        case LrSchedule::kStepDecay: {
            const auto steps = cfg.step_every > 0 ? epoch / cfg.step_every : 0;
            return cfg.learning_rate * std::pow(cfg.step_gamma,
                                                static_cast<double>(steps));
        }
        case LrSchedule::kCosine: {
            if (cfg.epochs <= 1) return cfg.learning_rate;
            const double progress =
                static_cast<double>(epoch) / static_cast<double>(cfg.epochs - 1);
            const double floor = cfg.learning_rate * cfg.cosine_floor;
            return floor + 0.5 * (cfg.learning_rate - floor) *
                               (1.0 + std::cos(3.14159265358979 * progress));
        }
    }
    return cfg.learning_rate;
}

void clip_gradients(std::vector<ParamView>& params, double max_norm) {
    double sq = 0.0;
    for (const ParamView& p : params)
        for (const float g : p.grads) sq += static_cast<double>(g) * g;
    const double norm = std::sqrt(sq);
    if (norm <= max_norm || norm == 0.0) return;
    const auto scale = static_cast<float>(max_norm / norm);
    for (ParamView& p : params)
        for (float& g : p.grads) g *= scale;
}

/// One SGD step over the index window `idx`: gather the batch, forward,
/// loss+gradient, backward, clip, optimizer update. Returns the batch loss.
/// After the first batch warms the optimizer state this is heap-free
/// (tests/test_nn_workspace.cpp asserts 0 allocations per step, with tracing
/// disabled AND enabled); the contract below makes wifisense-lint prove it
/// transitively over the whole call graph. TraceScope/Counter recording is a
/// gated atomic slot write into pre-reserved buffers — never a heap touch.
// wifisense-lint: requires(noalloc)
// wifisense-lint: allow-call(TraceScope) env-gated observability: the span ring is preallocated at trace start; a disabled tracer records nothing
double train_step(Mlp& net, const Matrix& inputs, const Matrix& targets,
                  const Loss& loss, const TrainConfig& cfg, Optimizer& opt,
                  std::vector<ParamView>& params, Matrix& by,
                  std::span<const std::size_t> idx, std::mt19937_64& rng,
                  common::Counter& obs_steps) {
    common::TraceScope step_span("train.step");
    obs_steps.add(1);
    Matrix& bx = net.input_buffer();
    gather_rows_into(inputs, idx, bx);
    gather_rows_into(targets, idx, by);
    if (cfg.input_noise > 0.0) {
        std::normal_distribution<float> jitter(
            0.0f, static_cast<float>(cfg.input_noise));
        for (float& v : bx.data()) v += jitter(rng);
    }

    net.zero_grad();
    const Matrix& out = net.forward_ws(bx, /*cache=*/true);
    const double batch_loss = loss.compute_into(out, by, net.output_grad_buffer());
    net.backward_ws();
    if (cfg.grad_clip > 0.0) clip_gradients(params, cfg.grad_clip);
    opt.step(params);
    return batch_loss;
}

}  // namespace

TrainHistory train(Mlp& net, const Matrix& inputs, const Matrix& targets,
                   const Loss& loss, const TrainConfig& cfg) {
    AdamW opt({.lr = cfg.learning_rate, .weight_decay = cfg.weight_decay});
    return train(net, inputs, targets, loss, cfg, opt);
}

TrainHistory train(Mlp& net, const Matrix& inputs, const Matrix& targets,
                   const Loss& loss, const TrainConfig& cfg, Optimizer& opt) {
    if (inputs.rows() != targets.rows())
        throw std::invalid_argument("train: inputs/targets row mismatch");
    if (inputs.rows() == 0) throw std::invalid_argument("train: empty training set");
    if (cfg.batch_size == 0) throw std::invalid_argument("train: zero batch size");
    if (inputs.cols() != net.input_size())
        throw std::invalid_argument("train: input width != network input size");
    if (targets.cols() != net.output_size())
        throw std::invalid_argument("train: target width != network output size");

    std::mt19937_64 rng(cfg.seed);
    std::vector<std::size_t> order(inputs.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});

    TrainHistory history;
    std::vector<ParamView> params = net.parameters();
    net.set_training(true);

    // Size the workspace and the target-batch scratch once: after the first
    // batch warms the optimizer state, every remaining step is allocation-free
    // (see tests/test_nn_workspace.cpp).
    const std::size_t max_batch = std::min(cfg.batch_size, inputs.rows());
    net.reserve_workspace(max_batch);
    Matrix by;
    by.reserve(max_batch, targets.cols());

    // Instrument handles are hoisted here so the steady-state loop below
    // performs only gated atomic recording (see common/metrics.hpp).
    common::Counter& obs_steps = common::obs_counter("train.steps");
    common::Counter& obs_epochs = common::obs_counter("train.epochs");
    common::Gauge& obs_loss = common::obs_gauge("train.epoch_loss");
    common::Gauge& obs_lr = common::obs_gauge("train.lr");

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        common::TraceScope epoch_span("train.epoch");
        opt.set_learning_rate(scheduled_lr(cfg, epoch));
        obs_lr.set(scheduled_lr(cfg, epoch));
        if (cfg.shuffle) std::shuffle(order.begin(), order.end(), rng);
        double epoch_loss = 0.0;
        std::size_t batches = 0;

        // Steady-state stepping: each train_step carries a requires(noalloc)
        // contract proven transitively by wifisense-lint; the textual region
        // marker additionally rejects any future allocating call spelled
        // directly inside this loop.
        // wifisense-lint: noalloc-begin
        for (std::size_t begin = 0; begin < order.size(); begin += cfg.batch_size) {
            const std::size_t count = std::min(cfg.batch_size, order.size() - begin);
            const std::span<const std::size_t> idx(&order[begin], count);
            epoch_loss += train_step(net, inputs, targets, loss, cfg, opt, params,
                                     by, idx, rng, obs_steps);
            ++batches;
        }
        // wifisense-lint: noalloc-end

        const double mean_loss = epoch_loss / static_cast<double>(batches);
        obs_epochs.add(1);
        obs_loss.set(mean_loss);
        history.epoch_loss.push_back(mean_loss);
        if (cfg.on_epoch) cfg.on_epoch(epoch, mean_loss);
    }
    net.set_training(false);
    return history;
}

Matrix predict(Mlp& net, const Matrix& inputs, std::size_t batch_size) {
    if (batch_size == 0) throw std::invalid_argument("predict: zero batch size");
    // Force inference mode for the duration: dropout becomes the identity and
    // layers skip activation caching entirely (no stale Grad-CAM views, no
    // gradient-buffer reservations). Restore the caller's mode on exit.
    const bool was_training = net.training_mode();
    net.set_training(false);
    if (inputs.rows() > 0)
        net.reserve_workspace(std::min(batch_size, inputs.rows()));
    common::Histogram& obs_batch_us =
        common::obs_histogram("predict.batch_us", common::kLatencyBucketsUs);
    Matrix out(inputs.rows(), net.output_size());
    for (std::size_t begin = 0; begin < inputs.rows(); begin += batch_size) {
        common::TraceScope batch_span("predict.batch");
        const std::uint64_t t0 =
            common::metrics_enabled() ? common::trace_now_ns() : 0;
        const std::size_t count = std::min(batch_size, inputs.rows() - begin);
        Matrix& block = net.input_buffer();
        row_block_into(inputs, begin, count, block);
        const Matrix& y = net.forward_ws(block, /*cache=*/false);
        std::copy_n(y.data().data(), y.size(), out.data().data() + begin * out.cols());
        if (t0 != 0)
            obs_batch_us.observe(common::trace_seconds_since(t0) * 1e6);
    }
    net.set_training(was_training);
    return out;
}

std::vector<int> predict_binary(Mlp& net, const Matrix& inputs, std::size_t batch_size) {
    if (net.output_size() != 1)
        throw std::invalid_argument("predict_binary: network must have one output");
    const Matrix logits = predict(net, inputs, batch_size);
    std::vector<int> labels(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r)
        labels[r] = logits.at(r, 0) > 0.0f ? 1 : 0;  // sigmoid(z) > .5 <=> z > 0
    return labels;
}

}  // namespace wifisense::nn
