// Room geometry for the multipath channel model: the paper's office is
// 12 x 6 x 3 m with the AP and the CSI sniffer (RP1) mounted 2 m apart at
// 1.4 m height along a wall (Section IV-A, Figure 2).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

namespace wifisense::csi {

struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
    double norm() const { return std::sqrt(dot(*this)); }
};

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Shortest distance from point p to the segment [a, b].
double point_segment_distance(const Vec3& p, const Vec3& a, const Vec3& b);

/// Axis-aligned room with one corner at the origin.
struct RoomGeometry {
    double lx = 12.0;  ///< paper's office length (m)
    double ly = 6.0;   ///< width (m)
    double lz = 3.0;   ///< height (m)
    Vec3 tx{5.0, 0.4, 1.4};  ///< access point
    Vec3 rx{7.0, 0.4, 1.4};  ///< CSI sniffer, 2 m from the AP

    bool contains(const Vec3& p) const {
        return p.x >= 0 && p.x <= lx && p.y >= 0 && p.y <= ly && p.z >= 0 && p.z <= lz;
    }
};

/// One first-order specular image of the transmitter.
struct ImageSource {
    Vec3 position;
    double reflection_coeff = 0.0;
    std::size_t surface = 0;  ///< 0..5: x=0, x=lx, y=0, y=ly, z=0 (floor), z=lz
};

struct SurfaceReflectivity {
    double walls = 0.55;
    double floor = 0.30;
    double ceiling = 0.40;
};

/// First-order images of `source` in all six room surfaces.
std::array<ImageSource, 6> first_order_images(const Vec3& source,
                                              const RoomGeometry& room,
                                              const SurfaceReflectivity& refl);

}  // namespace wifisense::csi
