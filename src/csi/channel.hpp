// Physics-based OFDM channel model producing the per-subcarrier complex
// frequency response H(f_k) of Eq. (1).
//
// Ray inventory per evaluation:
//   - the line-of-sight path TX -> RX;
//   - six first-order specular images (walls, floor, ceiling);
//   - one bistatic scattering path TX -> scatterer -> RX per furniture item;
//   - one bistatic path per human body present, plus obstruction losses on
//     static paths that a body stands close to.
//
// Environmental coupling (the paper's Section V-D claim that CSI encodes
// temperature/humidity non-linearly):
//   - water-vapour excess attenuation: each path is scaled by
//     exp(-alpha * d) with alpha proportional to absolute humidity;
//   - temperature phase drift: effective electrical path length scales with
//     (1 + kappa (T - 21degC)), modeling combined oscillator ppm drift and
//     material property changes;
//   - temperature gain drift of the receiver front-end.
// The coupling coefficients are deliberately a few orders of magnitude
// larger than free-space physics alone would give (real 2.4 GHz vapour
// absorption is ~1e-4 dB/m); they stand in for the aggregate of all
// temperature/humidity-dependent effects in a real building (heater airflow,
// material permittivity, hardware drift) and are sized so the regression
// task of Table V is learnable above the receiver noise floor. See
// DESIGN.md, substitution table.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "csi/geometry.hpp"

namespace wifisense::csi {

/// Thermodynamic state of the room as seen by the channel.
struct EnvironmentState {
    double temperature_c = 21.0;
    double vapor_density_gm3 = 6.0;  ///< absolute humidity (g/m^3)
};

/// A human body treated as a mobile scatterer.
struct BodyState {
    Vec3 position;
    double reflectivity = 1.0;   ///< torso monostatic reflection coefficient
};

struct ChannelConfig {
    std::size_t n_subcarriers = 64;       ///< 20 MHz channel => 64 (Section II-A)
    double center_freq_hz = 2.437e9;      ///< 2.4 GHz band, channel 6
    double subcarrier_spacing_hz = 312.5e3;
    SurfaceReflectivity surfaces;

    std::size_t n_furniture = 10;
    double furniture_reflectivity = 0.15;
    /// Slow Ornstein-Uhlenbeck positional drift of the scatterers (chairs
    /// nudged, doors ajar, cm-scale everyday entropy). This is what makes
    /// the empty-room CSI wander across hours/days — the reason a linear
    /// classifier cannot pin down a fixed "empty" signature (Table IV,
    /// Logistic/CSI) while nonlinear models still can.
    double furniture_drift_sigma_m = 0.001;
    double furniture_drift_tau_s = 14400.0;

    /// Body shadowing: extra loss applied to a static path when a body is
    /// within `body_block_radius_m` of the path's chord.
    double body_block_radius_m = 0.6;
    double body_block_loss = 0.45;  ///< multiplicative amplitude retained

    /// Water vapour attenuation per metre per (g/m^3) of absolute humidity.
    double humidity_atten_per_m_gm3 = 5.0e-4;
    /// Fractional electrical path length change per degC away from 21degC.
    double temp_phase_coeff = 4.0e-5;
    /// Receiver front-end gain slope per degC away from 21degC.
    double temp_gain_coeff = -8.0e-4;
};

/// Multipath channel over a fixed room. The furniture scatterer layout is
/// drawn once from the constructor seed and can later be perturbed to model
/// the paper's "furniture layout does change" condition.
class ChannelModel {
public:
    ChannelModel(RoomGeometry room, ChannelConfig cfg, std::uint64_t seed);

    /// Complex CFR H[k] for the current layout, environment, and bodies.
    std::vector<std::complex<double>> frequency_response(
        const EnvironmentState& env, std::span<const BodyState> bodies) const;

    /// Pure variant over an explicit scatterer snapshot (base + drift
    /// positions, see scatterer_positions()). Reads only immutable channel
    /// state, so it is safe to call concurrently while the snapshot's owner
    /// keeps mutating the live layout — the simulator's parallel measurement
    /// phase relies on this.
    std::vector<std::complex<double>> frequency_response(
        const EnvironmentState& env, std::span<const BodyState> bodies,
        std::span<const Vec3> scatterers) const;

    /// Effective scatterer positions right now: furniture + OU drift.
    std::vector<Vec3> scatterer_positions() const;

    /// Displace furniture scatterers by up to `magnitude` metres (uniform
    /// per-axis), clamped into the room. Each scatterer is moved with
    /// probability `fraction` (cleaners move chairs, not desks). Models
    /// layout changes.
    void perturb_furniture(double magnitude, std::mt19937_64& rng,
                           double fraction = 1.0);

    /// Restore the constructor-time furniture layout.
    void reset_furniture();

    /// Replace the scatterer layout (size must match n_furniture); used to
    /// restore a saved layout after a temporary rearrangement.
    void set_furniture(std::vector<Vec3> positions);

    /// Anchored shuffle: selected scatterers jump to (original position +
    /// fresh uniform displacement up to `magnitude`). Unlike
    /// perturb_furniture this does NOT accumulate — repeated shuffles form an
    /// i.i.d. cloud around the constructor layout, modelling furniture that
    /// is moved and roughly put back.
    void shuffle_furniture(double magnitude, std::mt19937_64& rng,
                           double fraction = 1.0);

    /// Advance the OU positional drift of the scatterers by dt seconds.
    void advance_drift(double dt, std::mt19937_64& rng);

    const std::vector<Vec3>& furniture() const { return furniture_; }
    const RoomGeometry& room() const { return room_; }
    const ChannelConfig& config() const { return cfg_; }

    /// Subcarrier center frequency f_k (k in [0, n_subcarriers)).
    double subcarrier_frequency(std::size_t k) const;

private:
    RoomGeometry room_;
    ChannelConfig cfg_;
    std::array<ImageSource, 6> images_;
    std::vector<Vec3> furniture_;
    std::vector<Vec3> furniture_original_;
    std::vector<Vec3> drift_;  ///< OU offset added to each scatterer
};

/// Absolute humidity (g/m^3) from temperature (degC) and relative humidity
/// (percent), via the Magnus saturation-pressure formula.
double vapor_density_gm3(double temperature_c, double relative_humidity_pct);

}  // namespace wifisense::csi
