#include "csi/geometry.hpp"

#include <algorithm>

namespace wifisense::csi {

double point_segment_distance(const Vec3& p, const Vec3& a, const Vec3& b) {
    const Vec3 ab = b - a;
    const double len2 = ab.dot(ab);
    if (len2 == 0.0) return distance(p, a);
    const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
    return distance(p, a + ab * t);
}

std::array<ImageSource, 6> first_order_images(const Vec3& source,
                                              const RoomGeometry& room,
                                              const SurfaceReflectivity& refl) {
    std::array<ImageSource, 6> images;
    // x = 0 and x = lx walls.
    images[0] = {{-source.x, source.y, source.z}, refl.walls, 0};
    images[1] = {{2.0 * room.lx - source.x, source.y, source.z}, refl.walls, 1};
    // y = 0 and y = ly walls.
    images[2] = {{source.x, -source.y, source.z}, refl.walls, 2};
    images[3] = {{source.x, 2.0 * room.ly - source.y, source.z}, refl.walls, 3};
    // Floor and ceiling.
    images[4] = {{source.x, source.y, -source.z}, refl.floor, 4};
    images[5] = {{source.x, source.y, 2.0 * room.lz - source.z}, refl.ceiling, 5};
    return images;
}

}  // namespace wifisense::csi
