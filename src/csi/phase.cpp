#include "csi/phase.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wifisense::csi {

std::vector<double> raw_phase(std::span<const std::complex<double>> cfr) {
    std::vector<double> out(cfr.size());
    for (std::size_t k = 0; k < cfr.size(); ++k) out[k] = std::arg(cfr[k]);
    return out;
}

std::vector<double> unwrap_phase(std::span<const double> phase) {
    std::vector<double> out(phase.begin(), phase.end());
    for (std::size_t k = 1; k < out.size(); ++k) {
        double d = out[k] - out[k - 1];
        while (d > std::numbers::pi) {
            out[k] -= 2.0 * std::numbers::pi;
            d = out[k] - out[k - 1];
        }
        while (d < -std::numbers::pi) {
            out[k] += 2.0 * std::numbers::pi;
            d = out[k] - out[k - 1];
        }
    }
    return out;
}

std::vector<double> sanitize_phase(std::span<const double> phase) {
    if (phase.size() < 3)
        throw std::invalid_argument("sanitize_phase: need at least 3 subcarriers");
    std::vector<double> un = unwrap_phase(phase);

    // Least-squares line fit phi_k ~= a + b*k, closed form.
    const auto n = static_cast<double>(un.size());
    double sk = 0.0, sp = 0.0, skk = 0.0, skp = 0.0;
    for (std::size_t k = 0; k < un.size(); ++k) {
        const auto kd = static_cast<double>(k);
        sk += kd;
        sp += un[k];
        skk += kd * kd;
        skp += kd * un[k];
    }
    const double denom = n * skk - sk * sk;
    const double b = denom != 0.0 ? (n * skp - sk * sp) / denom : 0.0;
    const double a = (sp - b * sk) / n;
    for (std::size_t k = 0; k < un.size(); ++k)
        un[k] -= a + b * static_cast<double>(k);
    return un;
}

PhaseImpairments::PhaseImpairments(PhaseImpairmentConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {}

std::vector<std::complex<double>> PhaseImpairments::apply(
    std::span<const std::complex<double>> cfr) {
    const double offset = cfg_.cfo_offset_sigma_rad * noise_(rng_);
    const double slope = cfg_.sfo_slope_sigma_rad * noise_(rng_);
    std::vector<std::complex<double>> out(cfr.size());
    for (std::size_t k = 0; k < cfr.size(); ++k) {
        const double phi = offset + slope * static_cast<double>(k) +
                           cfg_.phase_noise_rad * noise_(rng_);
        out[k] = cfr[k] * std::polar(1.0, phi);
    }
    return out;
}

}  // namespace wifisense::csi
