#include "csi/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wifisense::csi {

Receiver::Receiver(ReceiverConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
    if (cfg_.noise_sigma < 0.0)
        throw std::invalid_argument("Receiver: negative noise sigma");
    if (cfg_.full_scale <= 0.0)
        throw std::invalid_argument("Receiver: non-positive full scale");
}

std::vector<float> Receiver::sample_amplitudes(
    std::span<const std::complex<double>> cfr) {
    // Noisy raw amplitudes first: the AGC acts on what the radio receives.
    std::vector<double> raw(cfr.size());
    double power = 0.0;
    for (std::size_t k = 0; k < cfr.size(); ++k) {
        const std::complex<double> noisy =
            cfr[k] + std::complex<double>(cfg_.noise_sigma * noise_(rng_),
                                          cfg_.noise_sigma * noise_(rng_));
        raw[k] = std::abs(noisy);
        power += raw[k] * raw[k];
    }
    const double rms = std::sqrt(power / static_cast<double>(cfr.size()));

    double agc = std::exp(cfg_.agc_jitter_sigma * noise_(rng_));
    if (cfg_.agc_compression > 0.0 && rms > 0.0)
        agc *= std::pow(cfg_.agc_target_rms / rms, cfg_.agc_compression);

    std::vector<float> amps(cfr.size());
    const double step =
        cfg_.quant_levels > 0 ? cfg_.full_scale / static_cast<double>(cfg_.quant_levels)
                              : 0.0;
    for (std::size_t k = 0; k < cfr.size(); ++k) {
        double amp = raw[k] * agc;
        if (step > 0.0)
            amp = std::min(std::round(amp / step) * step,
                           cfg_.full_scale - step);
        amps[k] = static_cast<float>(amp);
    }
    return amps;
}

}  // namespace wifisense::csi
