#include "csi/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wifisense::csi {

Receiver::Receiver(ReceiverConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
    if (cfg_.noise_sigma < 0.0)
        throw std::invalid_argument("Receiver: negative noise sigma");
    if (cfg_.full_scale <= 0.0)
        throw std::invalid_argument("Receiver: non-positive full scale");
}

// wifisense-lint: allow-call(noise_) Gaussian draw from the receiver's own substream engine (seeded in the ctor): deterministic under the fixed-seed contract
PacketNoise Receiver::draw_packet_noise(std::size_t n_subcarriers) {
    PacketNoise noise;
    noise.iq.resize(2 * n_subcarriers);
    // Q before I: the historical inline path passed two noise_(rng_) calls as
    // std::complex constructor arguments, which GCC evaluates right-to-left.
    // Matching that order keeps seed-7 datasets identical across the
    // refactor.
    for (std::size_t k = 0; k < n_subcarriers; ++k) {
        noise.iq[2 * k + 1] = noise_(rng_);
        noise.iq[2 * k] = noise_(rng_);
    }
    noise.agc_jitter = noise_(rng_);
    // Fault decisions ride along with the draw but come from the plan's own
    // substreams, keyed on the packet index — the noise RNG above is never
    // touched, so a fault plan cannot perturb the fault-free world.
    if (fault_plan_ != nullptr && fault_plan_->active()) {
        noise.fault = fault_plan_->packet_fault(packets_drawn_);
        noise.phase = fault_plan_->phase_fault(packets_drawn_, link_id_);
    }
    ++packets_drawn_;
    return noise;
}

std::vector<float> Receiver::apply_noise(std::span<const std::complex<double>> cfr,
                                         const PacketNoise& noise) const {
    if (noise.iq.size() != 2 * cfr.size())
        throw std::invalid_argument("apply_noise: noise/CFR size mismatch");
    // A phase fault rotates the CFR before the radio's additive noise (the
    // oscillator glitch happens in the RF chain, the thermal noise after it).
    // Pure rotations preserve |H[k]|, so the amplitude pipeline only feels
    // this through the noise interaction — and the zero-fault path takes the
    // span as-is, bit for bit.
    std::vector<std::complex<double>> rotated;
    if (noise.phase.any()) {
        rotated.assign(cfr.begin(), cfr.end());
        common::apply_phase_fault(rotated, noise.phase);
        cfr = rotated;
    }
    // Noisy raw amplitudes first: the AGC acts on what the radio receives.
    std::vector<double> raw(cfr.size());
    double power = 0.0;
    for (std::size_t k = 0; k < cfr.size(); ++k) {
        const std::complex<double> noisy =
            cfr[k] + std::complex<double>(cfg_.noise_sigma * noise.iq[2 * k],
                                          cfg_.noise_sigma * noise.iq[2 * k + 1]);
        raw[k] = std::abs(noisy);
        power += raw[k] * raw[k];
    }
    const double rms = std::sqrt(power / static_cast<double>(cfr.size()));

    double agc = std::exp(cfg_.agc_jitter_sigma * noise.agc_jitter);
    if (cfg_.agc_compression > 0.0 && rms > 0.0)
        agc *= std::pow(cfg_.agc_target_rms / rms, cfg_.agc_compression);

    std::vector<float> amps(cfr.size());
    const double step =
        cfg_.quant_levels > 0 ? cfg_.full_scale / static_cast<double>(cfg_.quant_levels)
                              : 0.0;
    for (std::size_t k = 0; k < cfr.size(); ++k) {
        double amp = raw[k] * agc;
        if (step > 0.0)
            amp = std::min(std::round(amp / step) * step,
                           cfg_.full_scale - step);
        amps[k] = static_cast<float>(amp);
    }
    if (noise.fault.any()) {
        const double fraction =
            fault_plan_ != nullptr
                ? fault_plan_->config().subcarrier_dropout_fraction
                : 0.15;
        common::apply_packet_fault(amps, noise.fault, cfg_.full_scale, fraction);
    }
    return amps;
}

std::vector<float> Receiver::sample_amplitudes(
    std::span<const std::complex<double>> cfr) {
    return apply_noise(cfr, draw_packet_noise(cfr.size()));
}

}  // namespace wifisense::csi
