#include "csi/channel.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wifisense::csi {

namespace {

constexpr double kSpeedOfLight = 299'792'458.0;

}  // namespace

double vapor_density_gm3(double temperature_c, double relative_humidity_pct) {
    // Magnus formula: saturation vapour pressure in hPa.
    const double es = 6.112 * std::exp(17.62 * temperature_c / (243.12 + temperature_c));
    const double e = es * relative_humidity_pct / 100.0;
    // Ideal gas: rho_v [g/m^3] = 216.7 * e[hPa] / T[K].
    return 216.7 * e / (temperature_c + 273.15);
}

ChannelModel::ChannelModel(RoomGeometry room, ChannelConfig cfg, std::uint64_t seed)
    : room_(room), cfg_(cfg) {
    if (cfg_.n_subcarriers == 0)
        throw std::invalid_argument("ChannelModel: zero subcarriers");
    if (!room_.contains(room_.tx) || !room_.contains(room_.rx))
        throw std::invalid_argument("ChannelModel: TX/RX outside the room");

    images_ = first_order_images(room_.tx, room_, cfg_.surfaces);

    // Furniture scatterers: desks/cabinets scattered through the office away
    // from the TX-RX wall, at typical furniture heights.
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> ux(0.5, room_.lx - 0.5);
    std::uniform_real_distribution<double> uy(1.2, room_.ly - 0.3);
    std::uniform_real_distribution<double> uz(0.4, 1.5);
    furniture_.reserve(cfg_.n_furniture);
    for (std::size_t i = 0; i < cfg_.n_furniture; ++i)
        furniture_.push_back({ux(rng), uy(rng), uz(rng)});
    furniture_original_ = furniture_;
    drift_.assign(cfg_.n_furniture, Vec3{});
}

double ChannelModel::subcarrier_frequency(std::size_t k) const {
    const double offset =
        (static_cast<double>(k) - (static_cast<double>(cfg_.n_subcarriers) - 1.0) / 2.0);
    return cfg_.center_freq_hz + offset * cfg_.subcarrier_spacing_hz;
}

void ChannelModel::perturb_furniture(double magnitude, std::mt19937_64& rng,
                                     double fraction) {
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> u(-magnitude, magnitude);
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> pick(0.0, 1.0);
    for (Vec3& f : furniture_) {
        if (pick(rng) > fraction) continue;
        f.x = std::clamp(f.x + u(rng), 0.3, room_.lx - 0.3);
        f.y = std::clamp(f.y + u(rng), 0.3, room_.ly - 0.3);
        f.z = std::clamp(f.z + 0.3 * u(rng), 0.2, 1.8);
    }
}

void ChannelModel::reset_furniture() { furniture_ = furniture_original_; }

void ChannelModel::shuffle_furniture(double magnitude, std::mt19937_64& rng,
                                     double fraction) {
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> u(-magnitude, magnitude);
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::uniform_real_distribution<double> pick(0.0, 1.0);
    for (std::size_t i = 0; i < furniture_.size(); ++i) {
        if (pick(rng) > fraction) continue;
        const Vec3& base = furniture_original_[i];
        furniture_[i].x = std::clamp(base.x + u(rng), 0.3, room_.lx - 0.3);
        furniture_[i].y = std::clamp(base.y + u(rng), 0.3, room_.ly - 0.3);
        furniture_[i].z = std::clamp(base.z + 0.3 * u(rng), 0.2, 1.8);
    }
}

void ChannelModel::set_furniture(std::vector<Vec3> positions) {
    if (positions.size() != furniture_.size())
        throw std::invalid_argument("set_furniture: scatterer count mismatch");
    furniture_ = std::move(positions);
}

void ChannelModel::advance_drift(double dt, std::mt19937_64& rng) {
    if (cfg_.furniture_drift_sigma_m <= 0.0 || cfg_.furniture_drift_tau_s <= 0.0)
        return;
    const double decay = dt / cfg_.furniture_drift_tau_s;
    const double kick =
        cfg_.furniture_drift_sigma_m * std::sqrt(2.0 * decay);
    // wifisense-lint: allow(ipa.rng-leak) stateless shaper over the caller's seeded substream engine: deterministic under the fixed-seed contract
    std::normal_distribution<double> norm(0.0, 1.0);
    for (Vec3& d : drift_) {
        d.x += -d.x * decay + kick * norm(rng);
        d.y += -d.y * decay + kick * norm(rng);
        d.z += -0.3 * d.z * decay + 0.3 * kick * norm(rng);
    }
}

std::vector<Vec3> ChannelModel::scatterer_positions() const {
    std::vector<Vec3> out(furniture_.size());
    for (std::size_t i = 0; i < furniture_.size(); ++i)
        out[i] = furniture_[i] + drift_[i];
    return out;
}

std::vector<std::complex<double>> ChannelModel::frequency_response(
    const EnvironmentState& env, std::span<const BodyState> bodies) const {
    return frequency_response(env, bodies, scatterer_positions());
}

std::vector<std::complex<double>> ChannelModel::frequency_response(
    const EnvironmentState& env, std::span<const BodyState> bodies,
    std::span<const Vec3> scatterers) const {
    const std::size_t n = cfg_.n_subcarriers;
    std::vector<std::complex<double>> h(n, {0.0, 0.0});

    const double alpha = cfg_.humidity_atten_per_m_gm3 * env.vapor_density_gm3;
    const double phase_stretch = 1.0 + cfg_.temp_phase_coeff * (env.temperature_c - 21.0);
    const double rx_gain = 1.0 + cfg_.temp_gain_coeff * (env.temperature_c - 21.0);

    // A path contributes amp * exp(-j 2 pi f d_eff / c) on every subcarrier;
    // amp includes the Friis spreading loss at the center wavelength.
    const double lambda_c = kSpeedOfLight / cfg_.center_freq_hz;
    const auto add_path = [&](double geometric_length, double coeff) {
        if (coeff == 0.0) return;
        const double amp = coeff * lambda_c / (4.0 * std::numbers::pi * geometric_length) *
                           std::exp(-alpha * geometric_length);
        const double d_eff = geometric_length * phase_stretch;
        // phase(k) = -2 pi f_k d_eff / c is affine in k, so step through the
        // subcarriers with one complex rotation instead of 64 sincos calls.
        const double base = -2.0 * std::numbers::pi * d_eff / kSpeedOfLight;
        const std::complex<double> rot =
            std::polar(1.0, base * cfg_.subcarrier_spacing_hz);
        std::complex<double> cur = std::polar(amp, base * subcarrier_frequency(0));
        for (std::size_t k = 0; k < n; ++k) {
            h[k] += cur;
            cur *= rot;
        }
    };

    // Obstruction: amplitude retained on a chord passing near bodies.
    const auto obstruction = [&](const Vec3& a, const Vec3& b) {
        double retained = 1.0;
        for (const BodyState& body : bodies) {
            // Bodies occupy roughly z in [0, 1.8]; the chord runs at sensor
            // height, so planar proximity is what matters.
            const Vec3 p{body.position.x, body.position.y, (a.z + b.z) / 2.0};
            if (point_segment_distance(p, a, b) < cfg_.body_block_radius_m)
                retained *= cfg_.body_block_loss;
        }
        return retained;
    };

    // Line of sight. The paper's occupants cannot pass between AP and RP1,
    // and the occupant model keeps them out of that strip, so obstruction is
    // structurally ~1 here but kept for generality.
    add_path(distance(room_.tx, room_.rx),
             obstruction(room_.tx, room_.rx));

    // First-order wall/floor/ceiling reflections (image method: the path
    // length equals the image-to-RX distance).
    for (const ImageSource& img : images_) {
        const double d = distance(img.position, room_.rx);
        add_path(d, img.reflection_coeff * obstruction(img.position, room_.rx));
    }

    // Furniture bistatic scattering (base position + slow drift).
    for (std::size_t i = 0; i < scatterers.size(); ++i) {
        const Vec3& f = scatterers[i];
        const double d = distance(room_.tx, f) + distance(f, room_.rx);
        const double block =
            obstruction(room_.tx, f) * obstruction(f, room_.rx);
        add_path(d, cfg_.furniture_reflectivity * block * 0.8);
    }

    // Human bodies as scatterers.
    for (const BodyState& body : bodies) {
        const Vec3 torso{body.position.x, body.position.y, 1.1};
        const double d = distance(room_.tx, torso) + distance(torso, room_.rx);
        add_path(d, body.reflectivity);
    }

    for (std::complex<double>& v : h) v *= rx_gain;
    return h;
}

}  // namespace wifisense::csi
