// Receiver-side impairments and the Nexmon-style amplitude extractor.
//
// A Nexmon-patched Raspberry Pi reports per-subcarrier complex CSI after the
// radio's AGC; the paper uses only the amplitude (Section II-A). We model:
//   - additive complex white Gaussian noise per subcarrier,
//   - per-packet multiplicative AGC gain jitter (common across subcarriers),
//   - fixed-point amplitude quantization.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/fault.hpp"

namespace wifisense::csi {

struct ReceiverConfig {
    /// Std-dev of complex noise per quadrature, in absolute CFR units
    /// (the line-of-sight amplitude at 2 m is ~5e-3, so 4e-5 is ~-42 dB).
    double noise_sigma = 4.0e-5;
    /// AGC power normalization: per-packet gain pulling the subcarrier RMS
    /// toward agc_target_rms. Exponent 1 = perfect normalization (total
    /// power carries no information, as with real Nexmon captures);
    /// 0 disables. Partial compensation (~0.9) models the discrete gain
    /// steps of a real front-end.
    double agc_compression = 1.0;
    double agc_target_rms = 4.0e-3;
    /// Log-normal sigma of the per-packet residual gain jitter.
    double agc_jitter_sigma = 2.0e-2;
    /// Number of quantization steps across [0, full_scale); 0 disables.
    std::size_t quant_levels = 4096;
    /// Full-scale amplitude for the quantizer.
    double full_scale = 0.02;
};

/// The receiver randomness of one packet, pre-drawn so the (expensive, pure)
/// amplitude synthesis can run on another thread while the RNG stream itself
/// stays strictly sequential. Draw order matches sample_amplitudes exactly:
/// per subcarrier I then Q, then the AGC jitter variate.
struct PacketNoise {
    std::vector<double> iq;  ///< 2 * n_subcarriers standard-normal draws
    double agc_jitter = 0.0; ///< standard-normal draw for the AGC log-gain
    /// Fault decision attached at draw time when a FaultPlan is injected
    /// (default: no fault). Keyed on the packet's position in the stream, so
    /// it never consumes from — or perturbs — the receiver's noise RNG.
    common::PacketFault fault;
    /// Phase-stream fault (CFO glitch / PLL jitter) for this packet; applied
    /// to the CFR before the additive noise. Default: clean.
    common::PhaseFault phase;
};

class Receiver {
public:
    Receiver(ReceiverConfig cfg, std::uint64_t seed);

    /// One received CSI amplitude vector from a noiseless CFR. Equivalent to
    /// apply_noise(cfr, draw_packet_noise(cfr.size())).
    std::vector<float> sample_amplitudes(std::span<const std::complex<double>> cfr);

    /// Advance the receiver stream by one packet's worth of draws.
    PacketNoise draw_packet_noise(std::size_t n_subcarriers);

    /// Pure: impairments applied to a CFR with pre-drawn randomness. Safe to
    /// call concurrently; bitwise identical to the historical inline path.
    std::vector<float> apply_noise(std::span<const std::complex<double>> cfr,
                                   const PacketNoise& noise) const;

    const ReceiverConfig& config() const { return cfg_; }

    /// Inject a deterministic fault plan (non-owning; may be null to clear).
    /// Subsequent packets carry the plan's per-packet fault decisions, and
    /// apply_noise() realizes them (dropped packets are the caller's
    /// responsibility — the receiver only marks them). A null or inactive
    /// plan leaves every output bit identical to the fault-free receiver.
    /// `link_id` salts the phase-fault substream so each receiver of a
    /// multi-link deployment glitches independently.
    void set_fault_plan(const common::FaultPlan* plan, std::uint8_t link_id = 0) {
        fault_plan_ = plan;
        link_id_ = link_id;
    }

    /// Packets drawn so far (the stream index the fault plan is keyed on).
    std::uint64_t packets_drawn() const { return packets_drawn_; }

private:
    ReceiverConfig cfg_;
    std::mt19937_64 rng_;
    std::normal_distribution<double> noise_{0.0, 1.0};
    const common::FaultPlan* fault_plan_ = nullptr;
    std::uint8_t link_id_ = 0;
    std::uint64_t packets_drawn_ = 0;
};

}  // namespace wifisense::csi
