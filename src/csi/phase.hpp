// CSI phase processing. The paper uses amplitude only (Section II-A), but a
// usable CSI library must also expose phase: raw CSI phase from commodity
// hardware is dominated by carrier-frequency offset (CFO) and sampling-time
// offset (SFO), which add an unknown constant and an unknown linear slope
// across subcarriers on every packet. The standard sanitization (Sen et al.,
// "Precise indoor localization using PHY information") removes the best-fit
// linear term, leaving the multipath-induced phase structure.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace wifisense::csi {

/// Unwrap a phase sequence across subcarriers (remove 2*pi jumps).
std::vector<double> unwrap_phase(std::span<const double> phase);

/// Phase of each CFR entry, in radians, wrapped to (-pi, pi].
std::vector<double> raw_phase(std::span<const std::complex<double>> cfr);

/// Sanitize a raw per-subcarrier phase vector: unwrap, then subtract the
/// least-squares linear fit in the subcarrier index (removes the CFO
/// constant and the SFO slope). The result is the multipath phase residual.
std::vector<double> sanitize_phase(std::span<const double> phase);

/// Per-packet phase impairments of a commodity receiver: a random constant
/// offset (CFO drift between packets) and a random linear slope (SFO /
/// packet-detection jitter). Applying then sanitizing recovers the residual.
struct PhaseImpairmentConfig {
    double cfo_offset_sigma_rad = 1.5;   ///< per-packet constant offset
    double sfo_slope_sigma_rad = 0.05;   ///< per-packet slope per subcarrier
    double phase_noise_rad = 0.01;       ///< per-subcarrier jitter
};

class PhaseImpairments {
public:
    PhaseImpairments(PhaseImpairmentConfig cfg, std::uint64_t seed);

    /// Apply per-packet CFO/SFO/noise to a clean CFR (returns a copy).
    std::vector<std::complex<double>> apply(
        std::span<const std::complex<double>> cfr);

private:
    PhaseImpairmentConfig cfg_;
    std::mt19937_64 rng_;
    std::normal_distribution<double> noise_{0.0, 1.0};
};

}  // namespace wifisense::csi
